#include "pipeline/product_builder.hpp"

#include <string>

#include "obs/trace.hpp"
#include "pipeline/fingerprint.hpp"
#include "util/timer.hpp"

namespace is2::pipeline {

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

Artifacts Artifacts::from_beam(const atl03::Granule& granule, const atl03::BeamData& beam) {
  Artifacts art;
  art.in_granule = &granule;
  art.in_beam = &beam;
  return art;
}

Artifacts Artifacts::from_preprocessed(const atl03::PreprocessedBeam& pre) {
  Artifacts art;
  art.in_pre = &pre;
  art.mark_done(StageId::preprocess);
  return art;
}

Artifacts Artifacts::resume(std::vector<resample::Segment> segments,
                            std::vector<atl03::SurfaceClass> classes) {
  Artifacts art;
  // Classes are per-segment: a parallel vector (including empty == empty —
  // an empty beam classifies to nothing) means the classify stage ran; an
  // empty vector alongside non-empty segments means "no classes provided"
  // and the backend will run. Any other size is an upstream bug — fail at
  // the seam instead of silently re-classifying over corrupt input.
  if (!classes.empty() && classes.size() != segments.size())
    throw std::invalid_argument(
        "Artifacts::resume: classes (" + std::to_string(classes.size()) +
        ") not parallel to segments (" + std::to_string(segments.size()) + ")");
  const bool classified = classes.size() == segments.size();
  art.segments = std::move(segments);
  art.mark_done(StageId::preprocess);  // vacuously: segments subsume the beam
  art.mark_done(StageId::resample);
  art.mark_done(StageId::fpb);
  if (classified) {
    art.classes = std::move(classes);
    art.mark_done(StageId::classify);
  }
  return art;
}

const atl03::PreprocessedBeam& Artifacts::preprocessed() const {
  if (!done(StageId::preprocess))
    throw std::logic_error("Artifacts: preprocess stage has not run");
  if (in_pre) return *in_pre;
  return pre_out;
}

const std::vector<resample::Segment>& Artifacts::segments_out() const {
  if (!done(StageId::fpb)) throw std::logic_error("Artifacts: fpb stage has not run");
  return segments;
}

const std::vector<resample::FeatureRow>& Artifacts::features_out() const {
  if (!done(StageId::features)) throw std::logic_error("Artifacts: features stage has not run");
  return features;
}

const std::vector<atl03::SurfaceClass>& Artifacts::classes_out() const {
  if (!done(StageId::classify)) throw std::logic_error("Artifacts: classify stage has not run");
  return classes;
}

const seasurface::SeaSurfaceProfile& Artifacts::sea_surface_out() const {
  if (!done(StageId::seasurface))
    throw std::logic_error("Artifacts: seasurface stage has not run");
  return sea_surface;
}

const freeboard::FreeboardProduct& Artifacts::freeboard_out() const {
  if (!done(StageId::freeboard)) throw std::logic_error("Artifacts: freeboard stage has not run");
  return freeboard;
}

std::vector<resample::Segment> Artifacts::take_segments() {
  if (!done(StageId::fpb)) throw std::logic_error("Artifacts: fpb stage has not run");
  done_ = {};  // segments leave the bundle: nothing derived from them is valid
  return std::move(segments);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

StageId final_stage(ProductKind kind) {
  switch (kind) {
    case ProductKind::classification: return StageId::classify;
    case ProductKind::seasurface: return StageId::seasurface;
    case ProductKind::freeboard: return StageId::freeboard;
  }
  throw std::invalid_argument("final_stage: unknown ProductKind");
}

std::uint64_t prefix_fingerprint(const core::PipelineConfig& config, seasurface::Method method,
                                 ProductKind kind) {
  // Stage-scoped: each block below hashes exactly the config inputs the
  // corresponding stage prefix reads, so products of shallower kinds keep
  // one cache identity across settings their stages never consume (most
  // importantly: a classification product is method-agnostic).
  std::uint64_t h = 0x15ECE5E1CEu;  // arbitrary domain tag
  // preprocess .. classify (every kind).
  h = fp_mix(h, config.seed);
  h = fp_mix(h, static_cast<std::uint64_t>(config.sequence_window));
  h = fp_mix(h, config.track_length_m);
  h = fp_mix(h, config.segmenter.window_m);
  h = fp_mix(h, config.segmenter.shot_spacing_m);
  h = fp_mix(h, static_cast<std::uint64_t>(config.segmenter.min_photons));
  h = fp_mix(h, static_cast<std::uint64_t>(config.preprocess.min_conf));
  h = fp_mix(h, static_cast<std::uint64_t>(config.preprocess.apply_geo_correction));
  h = fp_mix(h, config.preprocess.outlier_bin_m);
  h = fp_mix(h, config.preprocess.outlier_threshold_m);
  h = fp_mix(h, config.instrument.dead_time_m);
  h = fp_mix(h, static_cast<std::uint64_t>(config.instrument.strong_channels));
  if (kind >= ProductKind::seasurface) {
    // Sea surface estimator (the method is a seasurface-stage input).
    h = fp_mix(h, static_cast<std::uint64_t>(method));
    h = fp_mix(h, config.seasurface.window_m);
    h = fp_mix(h, config.seasurface.stride_m);
    h = fp_mix(h, config.seasurface.lead_gap_m);
    h = fp_mix(h, config.seasurface.sigma_floor);
    h = fp_mix(h, static_cast<std::uint64_t>(config.seasurface.min_lead_segments));
    h = fp_mix(h, config.seasurface.outlier_mad_k);
  }
  if (kind >= ProductKind::freeboard) {
    // Freeboard clipping.
    h = fp_mix(h, config.freeboard.max_freeboard_m);
    h = fp_mix(h, config.freeboard.min_freeboard_m);
    h = fp_mix(h, static_cast<std::uint64_t>(config.freeboard.include_open_water));
  }
  return h;
}

std::uint64_t config_fingerprint(const core::PipelineConfig& config, seasurface::Method method) {
  return prefix_fingerprint(config, method, ProductKind::freeboard);
}

std::uint64_t product_fingerprint(const core::PipelineConfig& config, seasurface::Method method,
                                  const ClassifierBackend& backend, ProductKind kind) {
  std::uint64_t h = prefix_fingerprint(config, method, kind);
  h = fp_mix(h, static_cast<std::uint64_t>(backend.id()));
  h = fp_mix(h, backend.fingerprint());
  return h;
}

// ---------------------------------------------------------------------------
// ProductBuilder
// ---------------------------------------------------------------------------

ProductBuilder::ProductBuilder(const core::PipelineConfig& config,
                               const geo::GeoCorrections& corrections)
    : config_(config),
      corrections_(corrections),
      fpb_(config.instrument.dead_time_m, config.instrument.strong_channels) {
  config_.validate();  // bad configs fail here, not deep inside a stage
}

void ProductBuilder::run_stage(Artifacts& art, StageId id, ClassifierBackend* backend,
                               seasurface::Method method) const {
  switch (id) {
    case StageId::preprocess: {
      if (!art.in_granule || !art.in_beam)
        throw std::logic_error("ProductBuilder: preprocess needs a granule+beam input");
      art.pre_out = atl03::preprocess_beam(*art.in_granule, *art.in_beam, corrections_,
                                           config_.preprocess);
      break;
    }
    case StageId::resample:
      art.segments = resample::resample(art.preprocessed(), config_.segmenter);
      break;
    case StageId::fpb:
      fpb_.apply(art.segments);
      break;
    case StageId::features:
      // Delta features break across along-track gaps wider than 1.5x the
      // resampling window (same policy everywhere; see to_features).
      art.baseline = resample::rolling_baseline(art.segments);
      art.features =
          resample::to_features(art.segments, art.baseline, config_.segmenter.window_m * 1.5);
      break;
    case StageId::classify:
      if (!backend)
        throw std::logic_error("ProductBuilder: classify stage needs a ClassifierBackend");
      art.classes = backend->classify(art.features_out());
      break;
    case StageId::seasurface:
      art.sea_surface = seasurface::detect_sea_surface(art.segments_out(), art.classes_out(),
                                                       method, config_.seasurface);
      break;
    case StageId::freeboard:
      art.freeboard = freeboard::compute_freeboard(art.segments_out(), art.classes_out(),
                                                   art.sea_surface_out(), config_.freeboard);
      break;
  }
  art.mark_done(id);
}

void ProductBuilder::run_until(Artifacts& art, StageId until, StageTrace* trace) const {
  if (until > StageId::features)
    throw std::invalid_argument(
        "ProductBuilder::run_until: classify and deeper need build() (backend + method)");
  util::Timer timer;
  for (std::size_t i = 0; i <= static_cast<std::size_t>(until); ++i) {
    const auto id = static_cast<StageId>(i);
    if (art.done(id)) continue;
    // One obs span per stage, covering exactly the StageTrace-timed window
    // (no-op outside a serve TraceBinding, e.g. batch builds).
    obs::SpanScope span(stage_name(id));
    timer.reset();
    run_stage(art, id, nullptr, seasurface::Method::NasaEquation);
    if (trace) trace->mark(id, timer.millis());
  }
}

void ProductBuilder::build(Artifacts& art, ProductKind kind, ClassifierBackend* backend,
                           seasurface::Method method, StageTrace* trace) const {
  const StageId until = final_stage(kind);
  StageTrace local;
  StageTrace& tr = trace ? *trace : local;
  util::Timer timer;
  for (std::size_t i = 0; i <= static_cast<std::size_t>(until); ++i) {
    const auto id = static_cast<StageId>(i);
    if (art.done(id)) continue;
    // Resumed-from-classification builds never need the features stage: the
    // stage graph's only consumer of features is classify.
    if (id == StageId::features && art.done(StageId::classify)) continue;
    obs::SpanScope span(stage_name(id));
    timer.reset();
    run_stage(art, id, backend, method);
    tr.mark(id, timer.millis());
  }
  metrics_.record(tr);
}

}  // namespace is2::pipeline
