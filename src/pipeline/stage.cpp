#include "pipeline/stage.hpp"

#include <cstdio>

namespace is2::pipeline {

double StageLatency::percentile_ms(double p) const {
  if (histogram.total() == 0) return 0.0;
  const double log_ms = util::histogram_quantile(histogram, p / 100.0);
  // The histogram saw log10 of clamped values, so invert both transforms;
  // the true min/max from stats tighten the clamped edge bins.
  return std::clamp(std::pow(10.0, log_ms), stats.min(), stats.max());
}

std::string StageLatency::render(std::size_t max_width) const {
  const std::size_t n = histogram.bins();
  std::size_t first = n, last = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (histogram.count(b) == 0) continue;
    first = std::min(first, b);
    last = b;
  }
  if (first == n) return "(no samples)\n";
  std::size_t peak = 1;
  for (std::size_t b = first; b <= last; ++b) peak = std::max(peak, histogram.count(b));
  std::string out;
  char buf[64];
  for (std::size_t b = first; b <= last; ++b) {
    std::snprintf(buf, sizeof buf, "%9.3g ms | ", bin_lo_ms(b));
    out += buf;
    const auto w = static_cast<std::size_t>(static_cast<double>(histogram.count(b)) /
                                            static_cast<double>(peak) *
                                            static_cast<double>(max_width));
    out.append(w, '#');
    std::snprintf(buf, sizeof buf, " %zu\n", histogram.count(b));
    out += buf;
  }
  return out;
}

}  // namespace is2::pipeline
