#include "pipeline/classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "pipeline/fingerprint.hpp"

namespace is2::pipeline {

using atl03::SurfaceClass;

namespace {

/// Standardize feature rows into a flat [n * kDim] buffer. Shared by both
/// window-classification paths so the serve-vs-batch bit-identity contract
/// cannot drift.
std::vector<float> standardize_rows(const std::vector<resample::FeatureRow>& features,
                                    const resample::FeatureScaler& scaler) {
  constexpr int kDim = resample::FeatureRow::kDim;
  std::vector<float> scaled(features.size() * kDim);
  for (std::size_t i = 0; i < features.size(); ++i)
    for (int d = 0; d < kDim; ++d)
      scaled[i * kDim + d] = (features[i].v[d] - scaler.mean[d]) / scaler.std[d];
  return scaled;
}

/// Per-window predictions -> per-segment classes: each window's prediction
/// lands on its center segment, edge segments inherit the nearest interior
/// prediction. `pred` has n - window + 1 entries.
std::vector<SurfaceClass> centers_with_edge_fill(const std::uint8_t* pred, std::size_t n,
                                                 std::size_t window) {
  std::vector<SurfaceClass> out(n, SurfaceClass::Unknown);
  const std::size_t half = window / 2;
  const std::size_t n_windows = n - window + 1;
  for (std::size_t w = 0; w < n_windows; ++w)
    out[w + half] = static_cast<SurfaceClass>(pred[w]);
  for (std::size_t i = 0; i < half; ++i) out[i] = out[half];
  for (std::size_t i = n - half; i < n; ++i) out[i] = out[n - half - 1];
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// classify_windows (the former core::classify_segments body)
// ---------------------------------------------------------------------------

std::vector<SurfaceClass> classify_windows(nn::Sequential& model,
                                           const resample::FeatureScaler& scaler,
                                           const std::vector<resample::FeatureRow>& features,
                                           std::size_t window, std::size_t batch_windows) {
  const std::size_t n = features.size();
  if (window == 0 || n < window) return std::vector<SurfaceClass>(n, SurfaceClass::Unknown);

  // Standardize and window.
  const std::vector<float> scaled = standardize_rows(features, scaler);
  const std::size_t n_windows = n - window + 1;
  nn::Tensor3 x(n_windows, window, resample::FeatureRow::kDim);
  for (std::size_t w = 0; w < n_windows; ++w)
    std::copy(scaled.begin() + static_cast<std::ptrdiff_t>(w * resample::FeatureRow::kDim),
              scaled.begin() +
                  static_cast<std::ptrdiff_t>((w + window) * resample::FeatureRow::kDim),
              x.at(w, 0));

  const auto pred = model.predict(x, batch_windows);
  return centers_with_edge_fill(pred.data(), n, window);
}

// ---------------------------------------------------------------------------
// NnBackend
// ---------------------------------------------------------------------------

NnBackend::NnBackend(ModelFactory factory, resample::FeatureScaler scaler, std::size_t window,
                     std::size_t replicas, std::size_t batch_windows,
                     std::size_t inference_threads, std::uint64_t weights_version)
    : scaler_(scaler),
      window_(window),
      batch_windows_(batch_windows ? batch_windows : 256),
      weights_version_(weights_version) {
  if (!factory) throw std::invalid_argument("NnBackend: null model factory");
  if (window_ == 0) throw std::invalid_argument("NnBackend: zero window");
  // Sized callers + inference_threads so every concurrent classify() and
  // every inference-pool span can hold one replica without deadlock
  // (holders always return their replica).
  const std::size_t n = (replicas ? replicas : 1) + inference_threads;
  replicas_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    replicas_.push_back(std::make_unique<nn::Sequential>(factory()));
  if (inference_threads > 0)
    inference_pool_ = std::make_unique<util::ThreadPool>(inference_threads);
}

std::uint64_t NnBackend::fingerprint() const {
  std::uint64_t h = 0x4E4EBAC0ULL;  // arbitrary backend domain tag
  h = fp_mix(h, weights_version_);
  h = fp_mix(h, static_cast<std::uint64_t>(window_));
  // The scaler changes predictions as surely as the weights do: a refit
  // scaler must be a new cache identity even when model_version is not
  // bumped, or persistent disk-tier products go stale undetected.
  for (int d = 0; d < resample::FeatureRow::kDim; ++d) {
    h = fp_mix(h, static_cast<double>(scaler_.mean[d]));
    h = fp_mix(h, static_cast<double>(scaler_.std[d]));
  }
  return h;
}

std::unique_ptr<nn::Sequential> NnBackend::checkout_replica() {
  util::MutexLock lock(replica_mutex_);
  // Explicit wait loop (not a predicate lambda): the thread-safety analysis
  // only accepts guarded reads it can see under the held lock.
  while (replicas_.empty()) replica_cv_.wait(lock);
  std::unique_ptr<nn::Sequential> model = std::move(replicas_.back());
  replicas_.pop_back();
  return model;
}

void NnBackend::return_replica(std::unique_ptr<nn::Sequential> model) {
  {
    util::MutexLock lock(replica_mutex_);
    replicas_.push_back(std::move(model));
  }
  replica_cv_.notify_one();
}

std::uint64_t NnBackend::classify_span(const float* scaled, std::size_t w_begin,
                                       std::size_t w_end, std::uint8_t* pred) {
  const std::size_t window = window_;
  constexpr int kDim = resample::FeatureRow::kDim;
  const std::size_t batch = batch_windows_;

  // Check a model replica out of the pool (inference mutates Sequential state).
  std::unique_ptr<nn::Sequential> model = checkout_replica();
  std::uint64_t batches = 0;
  try {
    nn::Tensor3 x;  // staging buffer, reused across this span's batches
    for (std::size_t w0 = w_begin; w0 < w_end; w0 += batch) {
      const std::size_t rows = std::min(batch, w_end - w0);
      x.resize(rows, window, kDim);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t w = w0 + r;
        std::copy(scaled + w * kDim, scaled + (w + window) * kDim, x.at(r, 0));
      }
      model->predict_into(x, pred + w0, rows);  // one forward pass
      ++batches;
    }
  } catch (...) {
    return_replica(std::move(model));
    throw;
  }
  return_replica(std::move(model));
  return batches;
}

std::vector<SurfaceClass> NnBackend::classify(
    const std::vector<resample::FeatureRow>& features) {
  const std::size_t window = window_;
  const std::size_t n = features.size();
  if (n < window || window == 0) return std::vector<SurfaceClass>(n, SurfaceClass::Unknown);

  // Standardize once (same helper as classify_windows: bit-identical).
  const std::vector<float> scaled = standardize_rows(features, scaler_);
  const std::size_t n_windows = n - window + 1;
  const std::size_t batch = batch_windows_;

  std::vector<std::uint8_t> pred(n_windows);
  std::uint64_t batches = 0;

  // Batch-level parallelism: one call's windows fan out over the internal
  // inference pool in contiguous spans, each on its own model replica.
  // Every window's logits depend only on its own row, so the partition
  // never changes the predictions — span results are bit-identical to the
  // serial path for any span count. Spans are batch-aligned so parallelism
  // doesn't change batch shapes (and therefore per-batch scratch reuse).
  std::size_t spans = 1;
  if (inference_pool_) {
    const std::size_t full_batches = (n_windows + batch - 1) / batch;
    spans = std::min(inference_pool_->size(), full_batches);
  }
  if (spans <= 1) {
    batches = classify_span(scaled.data(), 0, n_windows, pred.data());
  } else {
    const std::size_t batches_per_span = (n_windows + batch * spans - 1) / (batch * spans);
    const std::size_t span_stride = batches_per_span * batch;
    std::atomic<std::uint64_t> batch_count{0};
    inference_pool_->parallel_for(spans, [&](std::size_t s) {
      const std::size_t w_begin = s * span_stride;
      if (w_begin >= n_windows) return;
      const std::size_t w_end = std::min(w_begin + span_stride, n_windows);
      batch_count.fetch_add(classify_span(scaled.data(), w_begin, w_end, pred.data()),
                            std::memory_order_relaxed);
    });
    batches = batch_count.load();
  }

  batches_.fetch_add(batches, std::memory_order_relaxed);
  windows_.fetch_add(n_windows, std::memory_order_relaxed);

  return centers_with_edge_fill(pred.data(), n, window);
}

// ---------------------------------------------------------------------------
// DecisionTreeBackend
// ---------------------------------------------------------------------------

DecisionTreeBackend::DecisionTreeBackend(baseline::DecisionTree tree) : tree_(std::move(tree)) {
  if (!tree_.trained())
    throw std::invalid_argument("DecisionTreeBackend: tree must be fitted before serving");
  std::uint64_t h = 0x7EEE0001ULL;  // arbitrary backend domain tag
  fingerprint_ = fp_mix(h, tree_.structure_hash());
}

std::vector<SurfaceClass> DecisionTreeBackend::classify(
    const std::vector<resample::FeatureRow>& features) {
  std::vector<SurfaceClass> out(features.size(), SurfaceClass::Unknown);
  for (std::size_t i = 0; i < features.size(); ++i)
    out[i] = static_cast<SurfaceClass>(tree_.predict(features[i].v));
  return out;
}

}  // namespace is2::pipeline
