// `is2::pipeline::ProductBuilder` — the one implementation of the paper's
// Fig. 1 pipeline (preprocess -> 2 m resample -> FPB -> features ->
// classification -> sea surface -> freeboard) behind every caller: the batch
// jobs in `core/`, `serve::GranuleService`'s cold builds, the examples and
// the benches. Before this existed the stage sequence was wired by hand in
// four places and every new scenario (partial products, alternate
// classifiers, per-stage caching) needed N parallel edits.
//
// The API is a stage graph over a typed `Artifacts` bundle:
//
//  * Each stage (see pipeline/stage.hpp) consumes artifacts earlier stages
//    produced and materializes exactly one new artifact; `Artifacts::done`
//    records which are present, and typed accessors throw instead of
//    returning garbage when a stage hasn't run.
//  * A build can stop at any `ProductKind` (classification / seasurface /
//    freeboard). Kinds are strict prefixes of each other, so a deeper
//    request can *resume* from a cached shallower product: seed an
//    Artifacts with `Artifacts::resume(segments, classes)` and only the
//    missing suffix runs — no shard IO, no inference. That is what turns
//    serve's kind-aware cache keys into real work savings.
//  * The classify stage is pluggable (`ClassifierBackend`): the nn replica
//    path and the ATL07-style decision tree drop into the same graph, and
//    the backend's identity participates in `product_fingerprint`.
//  * Every stage is latency-instrumented (StageTrace per build,
//    BuilderMetrics aggregate) so batch jobs and benches get the same
//    breakdown the serving metrics always had.
//
// Ownership / threading contract: a ProductBuilder is immutable after
// construction apart from its internally locked BuilderMetrics, so one
// instance may run builds from many threads concurrently (each build owns
// its Artifacts; the backend manages its own concurrency). Construction
// validates the PipelineConfig (`PipelineConfig::validate()`) so bad
// configs fail at the API boundary instead of deep inside a stage.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "atl03/granule.hpp"
#include "atl03/preprocess.hpp"
#include "core/config.hpp"
#include "freeboard/freeboard.hpp"
#include "geo/corrections.hpp"
#include "pipeline/classifier.hpp"
#include "pipeline/kinds.hpp"
#include "pipeline/stage.hpp"
#include "resample/fpb.hpp"
#include "resample/segmenter.hpp"
#include "seasurface/detector.hpp"

namespace is2::pipeline {

/// Typed bundle of everything a build has materialized so far. Stage
/// accessors throw std::logic_error when the stage hasn't run — a build
/// error, not a user error. Inputs are borrowed (the granule/beam or an
/// externally preprocessed beam must outlive the build); outputs are owned.
struct Artifacts {
  // -- inputs (exactly one seeding form) ------------------------------------
  const atl03::Granule* in_granule = nullptr;        ///< with in_beam: raw input
  const atl03::BeamData* in_beam = nullptr;
  const atl03::PreprocessedBeam* in_pre = nullptr;   ///< preprocess already done

  /// Seed from a raw single-beam granule (the full graph runs).
  static Artifacts from_beam(const atl03::Granule& granule, const atl03::BeamData& beam);
  /// Seed from an externally preprocessed beam (preprocess marked done; the
  /// beam is borrowed and must outlive the build).
  static Artifacts from_preprocessed(const atl03::PreprocessedBeam& pre);
  /// Seed from a cached shallower product: segments are FPB-corrected 2 m
  /// segments, classes (may be empty) the classify output. Marks
  /// preprocess/resample/fpb (and classify when classes present) done — the
  /// resume path behind serve's kind-aware cache.
  static Artifacts resume(std::vector<resample::Segment> segments,
                          std::vector<atl03::SurfaceClass> classes = {});

  // -- stage outputs (use the accessors; direct fields for moving out) ------
  atl03::PreprocessedBeam pre_out;             ///< preprocess (when not seeded)
  std::vector<resample::Segment> segments;     ///< resample (+fpb in place)
  std::vector<double> baseline;                ///< features: rolling sea level
  std::vector<resample::FeatureRow> features;  ///< features: the paper's six
  std::vector<atl03::SurfaceClass> classes;    ///< classify
  seasurface::SeaSurfaceProfile sea_surface;   ///< seasurface
  freeboard::FreeboardProduct freeboard;       ///< freeboard

  bool done(StageId id) const { return done_[static_cast<std::size_t>(id)]; }
  void mark_done(StageId id) { done_[static_cast<std::size_t>(id)] = true; }

  /// The preprocessed beam, wherever it lives (seeded or built).
  const atl03::PreprocessedBeam& preprocessed() const;
  const std::vector<resample::Segment>& segments_out() const;
  const std::vector<resample::FeatureRow>& features_out() const;
  const std::vector<atl03::SurfaceClass>& classes_out() const;
  const seasurface::SeaSurfaceProfile& sea_surface_out() const;
  const freeboard::FreeboardProduct& freeboard_out() const;

  /// Move the segments out (batch jobs hand them to label::auto_label).
  std::vector<resample::Segment> take_segments();

 private:
  std::array<bool, kNumStages> done_{};
};

/// The deepest stage a ProductKind needs.
StageId final_stage(ProductKind kind);

/// Fingerprint of every PipelineConfig input that changes built bytes, plus
/// the sea-surface method — i.e. the full-depth (freeboard) prefix. This is
/// the hash that used to live in `serve::config_fingerprint`; serve now
/// delegates here.
std::uint64_t config_fingerprint(const core::PipelineConfig& config, seasurface::Method method);

/// Stage-prefix-scoped fingerprint: hashes only the config inputs the
/// stages up to `kind`'s depth actually read. A `classification` key
/// therefore ignores the sea-surface method and the seasurface/freeboard
/// settings entirely — one cached classification product serves resume for
/// *every* method's deeper requests instead of fragmenting per method.
/// `prefix_fingerprint(config, method, ProductKind::freeboard)` equals
/// `config_fingerprint(config, method)`.
std::uint64_t prefix_fingerprint(const core::PipelineConfig& config, seasurface::Method method,
                                 ProductKind kind);

/// Full product identity: prefix fingerprint + classifier backend identity.
/// Deriving a shallower-kind resume key means recomputing the (cheap)
/// prefix hash at that kind, not just swapping the key's kind field.
std::uint64_t product_fingerprint(const core::PipelineConfig& config, seasurface::Method method,
                                  const ClassifierBackend& backend, ProductKind kind);

class ProductBuilder {
 public:
  /// Validates `config` (throws std::invalid_argument on inconsistency).
  ProductBuilder(const core::PipelineConfig& config, const geo::GeoCorrections& corrections);

  ProductBuilder(const ProductBuilder&) = delete;
  ProductBuilder& operator=(const ProductBuilder&) = delete;

  /// Run every not-yet-done stage up to and including `until`, excluding the
  /// classify/seasurface/freeboard tail (use build() for those — they need a
  /// backend/method). Stage wall times are appended to `trace` when given.
  void run_until(Artifacts& art, StageId until, StageTrace* trace = nullptr) const;

  /// Run every not-yet-done stage up to the depth `kind` requires.
  /// `backend` may be null only when the classify stage is already done
  /// (resumed artifacts); `method` selects the sea-surface estimator.
  /// Records the build into metrics() and into `trace` when given.
  void build(Artifacts& art, ProductKind kind, ClassifierBackend* backend,
             seasurface::Method method, StageTrace* trace = nullptr) const;

  const core::PipelineConfig& config() const { return config_; }
  const geo::GeoCorrections& corrections() const { return corrections_; }
  BuilderMetrics& metrics() const { return metrics_; }

 private:
  void run_stage(Artifacts& art, StageId id, ClassifierBackend* backend,
                 seasurface::Method method) const;

  core::PipelineConfig config_;
  geo::GeoCorrections corrections_;
  resample::FirstPhotonBiasCorrector fpb_;
  mutable BuilderMetrics metrics_;
};

}  // namespace is2::pipeline
