// Classifier backends for the `is2::pipeline` stage graph: the classify
// stage is the one pipeline stage with interchangeable implementations (the
// paper's deep models vs the ATL07-style decision tree; latent-embedding or
// retrieval classifiers slot in the same way), so it hides behind this
// interface and every caller — batch jobs, serve, benches — selects a
// backend per build instead of hard-wiring `nn::Sequential`.
//
// Ownership / threading contract: `classify()` must be safe to call from
// concurrent builds. `NnBackend` owns a checkout pool of model replicas
// (inference mutates Sequential scratch state) plus an optional batch-level
// inference ThreadPool; `DecisionTreeBackend` wraps an immutable fitted tree
// and is trivially concurrent. A backend's `fingerprint()` is part of cache
// identity: it must change whenever the backend would produce different
// classes (weights version, tree structure).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "atl03/types.hpp"
#include "baseline/decision_tree.hpp"
#include "nn/model.hpp"
#include "pipeline/kinds.hpp"
#include "resample/segmenter.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace is2::pipeline {

/// One classifier implementation behind the classify stage. Returns one
/// class per feature row (parallel to the segments the features came from).
class ClassifierBackend {
 public:
  virtual ~ClassifierBackend() = default;

  virtual std::vector<atl03::SurfaceClass> classify(
      const std::vector<resample::FeatureRow>& features) = 0;

  /// Stable backend family (cache key field).
  virtual Backend id() const = 0;
  /// Identity hash of everything that changes predictions: mixed into the
  /// product cache key so retrained weights never serve stale products.
  virtual std::uint64_t fingerprint() const = 0;
  virtual const char* name() const { return backend_name(id()); }
};

/// Sliding-window classification of a feature sequence with one model:
/// standardize, window, batch-predict, center-assign, edge-fill. The exact
/// algorithm `core::classify_segments` has always run (that free function is
/// now a thin wrapper over this).
std::vector<atl03::SurfaceClass> classify_windows(nn::Sequential& model,
                                                  const resample::FeatureScaler& scaler,
                                                  const std::vector<resample::FeatureRow>& features,
                                                  std::size_t window,
                                                  std::size_t batch_windows = 256);

/// The paper's deep-model path: a checkout pool of `nn::Sequential` replicas
/// (every call of the factory must produce numerically identical models) fed
/// batch-aligned window spans, optionally fanned out over an internal
/// inference ThreadPool. Predictions are bit-identical for any replica
/// count, span partition or thread count — windows are row-independent — so
/// concurrency here is purely a latency knob.
class NnBackend : public ClassifierBackend {
 public:
  using ModelFactory = std::function<nn::Sequential()>;

  /// `replicas` bounds concurrent classify() *spans* (callers + inference
  /// threads); `inference_threads` > 0 adds an internal pool that splits one
  /// call's windows across that many extra replicas.
  NnBackend(ModelFactory factory, resample::FeatureScaler scaler, std::size_t window,
            std::size_t replicas = 1, std::size_t batch_windows = 256,
            std::size_t inference_threads = 0, std::uint64_t weights_version = 0);

  std::vector<atl03::SurfaceClass> classify(
      const std::vector<resample::FeatureRow>& features) override;

  Backend id() const override { return Backend::nn; }
  std::uint64_t fingerprint() const override;

  /// Cumulative forward-pass batches / windows classified (serve metrics).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t windows() const { return windows_.load(std::memory_order_relaxed); }

  std::size_t window() const { return window_; }
  const resample::FeatureScaler& scaler() const { return scaler_; }

 private:
  /// Classify windows [w_begin, w_end) into pred (absolute indices) on one
  /// checked-out replica; returns the number of forward-pass batches.
  std::uint64_t classify_span(const float* scaled, std::size_t w_begin, std::size_t w_end,
                              std::uint8_t* pred);
  std::unique_ptr<nn::Sequential> checkout_replica();
  void return_replica(std::unique_ptr<nn::Sequential> model);

  resample::FeatureScaler scaler_;
  std::size_t window_;
  std::size_t batch_windows_;
  std::uint64_t weights_version_;

  util::Mutex replica_mutex_;
  util::CondVar replica_cv_;
  std::vector<std::unique_ptr<nn::Sequential>> replicas_ GUARDED_BY(replica_mutex_);
  std::unique_ptr<util::ThreadPool> inference_pool_;  ///< null when threads == 0

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> windows_{0};
};

/// The classical baseline: a fitted CART tree classifying each segment's
/// feature row independently (no window context, no standardization — tree
/// splits are scale-free). The class of model NASA's ATL07 surface
/// classification uses; dropping it in behind the same interface is the
/// whole point of the backend abstraction.
class DecisionTreeBackend : public ClassifierBackend {
 public:
  explicit DecisionTreeBackend(baseline::DecisionTree tree);

  std::vector<atl03::SurfaceClass> classify(
      const std::vector<resample::FeatureRow>& features) override;

  Backend id() const override { return Backend::decision_tree; }
  /// Hash of the fitted tree structure: retraining changes the fingerprint.
  std::uint64_t fingerprint() const override { return fingerprint_; }

  const baseline::DecisionTree& tree() const { return tree_; }

 private:
  baseline::DecisionTree tree_;
  std::uint64_t fingerprint_;
};

}  // namespace is2::pipeline
