// Shared vocabulary of the `is2::pipeline` stage-graph API: which product a
// build materializes (`ProductKind`) and which classifier backend produces
// the per-segment classes (`Backend`). Both participate in cache identity —
// serve's RAM/disk product keys and the IS2P disk format carry them — so
// they live in this tiny leaf header that `serve/` can include without
// pulling in the whole builder.
#pragma once

#include <cstdint>

namespace is2::pipeline {

/// How deep a build runs the paper's Fig. 1 pipeline. A shallower kind is a
/// strict prefix of a deeper one: a `classification` product holds exactly
/// the artifacts the first stages of a `freeboard` build would produce, so a
/// deeper request can resume from a cached shallower product (see
/// ProductBuilder). Values are stable: they appear in serialized products.
enum class ProductKind : std::uint8_t {
  classification = 0,  ///< segments + per-segment surface classes
  seasurface = 1,      ///< classification + local sea-surface profile
  freeboard = 2,       ///< seasurface + per-segment freeboard points
};

inline constexpr std::size_t kProductKinds = 3;

inline const char* product_kind_name(ProductKind k) {
  switch (k) {
    case ProductKind::classification: return "classification";
    case ProductKind::seasurface: return "seasurface";
    case ProductKind::freeboard: return "freeboard";
  }
  return "?";
}

/// Which classifier implementation fills the classes artifact. Values are
/// stable (serialized in product cache keys).
enum class Backend : std::uint8_t {
  nn = 0,             ///< the paper's LSTM/MLP `nn::Sequential` replica path
  decision_tree = 1,  ///< ATL07-style CART baseline (`baseline::DecisionTree`)
};

inline constexpr std::size_t kBackends = 2;

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::nn: return "nn";
    case Backend::decision_tree: return "tree";
  }
  return "?";
}

}  // namespace is2::pipeline
