// Canonical 64-bit fingerprint mixing used for pipeline/config/backend
// identity hashes. One shared implementation so the config fingerprint, the
// backend fingerprints and the serve cache keys can never drift apart.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/rng.hpp"

namespace is2::pipeline {

inline std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  return util::hash64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

inline std::uint64_t fp_mix(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fp_mix(h, bits);
}

}  // namespace is2::pipeline
