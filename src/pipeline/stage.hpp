// Stage identities and per-stage latency instrumentation for the
// `is2::pipeline` stage graph.
//
// The seven paper stages (Fig. 1) are first-class values here so every
// consumer — the batch jobs, `serve::GranuleService`, the benches — shares
// one latency vocabulary instead of each keeping its own stopwatch code.
// `StageLatency` (RunningStats + log-scale histogram) used to live in
// `serve/service.hpp`; it moved down into the pipeline layer with the
// builder so batch builds get the same distribution machinery for free
// (serve keeps a `using` alias for source compatibility).
//
// Threading contract: `StageLatency`/`StageTrace` are plain values (callers
// synchronize); `BuilderMetrics` is internally locked and safe to share
// across concurrent builds.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <string>

#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace is2::pipeline {

/// The seven stages of the paper's pipeline, in dependency order. A build
/// that resumes from cached artifacts skips the prefix that is already done.
enum class StageId : std::uint8_t {
  preprocess = 0,  ///< photon selection, projection, height correction
  resample = 1,    ///< 2 m windowed segments
  fpb = 2,         ///< first-photon-bias correction (in place on segments)
  features = 3,    ///< rolling baseline + the paper's six features
  classify = 4,    ///< per-segment classes via a ClassifierBackend
  seasurface = 5,  ///< local sea-surface profile
  freeboard = 6,   ///< per-segment freeboard points
};

inline constexpr std::size_t kNumStages = 7;

inline const char* stage_name(StageId id) {
  switch (id) {
    case StageId::preprocess: return "preprocess";
    case StageId::resample: return "resample";
    case StageId::fpb: return "fpb";
    case StageId::features: return "features";
    case StageId::classify: return "classify";
    case StageId::seasurface: return "seasurface";
    case StageId::freeboard: return "freeboard";
  }
  return "?";
}

/// Latency distribution of one pipeline stage, in milliseconds. The
/// histogram bins log10(ms) over [10 us, 100 s] — 10 bins per decade — so a
/// sub-millisecond cache probe and a near-second cold build are both
/// representable without saturating an edge bin.
struct StageLatency {
  static constexpr double kMinMs = 1e-2;  ///< 10 us: below this clamps low
  static constexpr double kMaxMs = 1e5;   ///< 100 s: above this clamps high
  static constexpr std::size_t kBinsPerDecade = 10;

  util::RunningStats stats;
  util::Histogram histogram{-2.0, 5.0, 7 * kBinsPerDecade};  ///< bins log10(ms)

  void add(double ms) {
    stats.add(ms);
    histogram.add(std::log10(std::clamp(ms, kMinMs, kMaxMs)));
  }
  /// Lower edge of a histogram bin, back in milliseconds.
  double bin_lo_ms(std::size_t bin) const {
    return std::pow(10.0, histogram.lo() + static_cast<double>(bin) * histogram.bin_width());
  }
  /// Percentile estimate from the log-scale histogram, back in milliseconds
  /// (p in [0,100]; 0 with no samples). Bin resolution bounds the error: 10
  /// bins per decade means the estimate sits within a factor of 10^0.1
  /// (~26%) of the exact order statistic — benches and exporters use these
  /// instead of re-deriving quantiles from raw sample arrays.
  double percentile_ms(double p) const;
  double p50_ms() const { return percentile_ms(50.0); }
  double p99_ms() const { return percentile_ms(99.0); }
  /// Render the latency distribution with millisecond bin labels (log axis),
  /// skipping empty leading/trailing decades.
  std::string render(std::size_t max_width = 60) const;
};

/// Wall time of each stage that ran during one build (ms; `ran` marks which
/// entries are meaningful — resumed builds leave their skipped prefix
/// untouched).
struct StageTrace {
  std::array<double, kNumStages> ms{};
  std::array<bool, kNumStages> ran{};

  double& at(StageId id) { return ms[static_cast<std::size_t>(id)]; }
  double at(StageId id) const { return ms[static_cast<std::size_t>(id)]; }
  bool did(StageId id) const { return ran[static_cast<std::size_t>(id)]; }
  void mark(StageId id, double stage_ms) {
    ms[static_cast<std::size_t>(id)] = stage_ms;
    ran[static_cast<std::size_t>(id)] = true;
  }
  /// Sum over the stages that ran (a resumed build's total is its suffix).
  double total_ms() const {
    double t = 0.0;
    for (std::size_t i = 0; i < kNumStages; ++i)
      if (ran[i]) t += ms[i];
    return t;
  }
};

/// Per-stage latency distributions, aggregated across builds.
using StageSnapshot = std::array<StageLatency, kNumStages>;

/// Thread-safe aggregation of StageTraces: one StageLatency per stage plus a
/// whole-build distribution over the stages that actually ran. Shared by
/// every caller of one ProductBuilder (serve workers, mapred partitions).
class BuilderMetrics {
 public:
  void record(const StageTrace& trace) {
    util::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < kNumStages; ++i)
      if (trace.ran[i]) stages_[i].add(trace.ms[i]);
    build_.add(trace.total_ms());
    ++builds_;
  }

  StageSnapshot stages() const {
    util::MutexLock lock(mutex_);
    return stages_;
  }

  StageLatency build() const {
    util::MutexLock lock(mutex_);
    return build_;
  }

  std::uint64_t builds() const {
    util::MutexLock lock(mutex_);
    return builds_;
  }

 private:
  mutable util::Mutex mutex_;
  StageSnapshot stages_ GUARDED_BY(mutex_);
  /// total_ms per build (full or resumed suffix)
  StageLatency build_ GUARDED_BY(mutex_);
  std::uint64_t builds_ GUARDED_BY(mutex_) = 0;
};

}  // namespace is2::pipeline
