// Sea-ice drift estimation between the IS2 and S2 acquisition times.
//
// The paper aligns each coincident pair by shifting the S2 image until its
// classes match the IS2 elevation profile (Table I: "550 m / NW" etc.).
// Here the estimator does that search automatically: over a polar grid of
// candidate shifts it scores the physical consistency between the segment
// elevations (relative to a rolling sea-level proxy) and the S2 class
// sampled at the shifted position, and returns the best shift.
#pragma once

#include <string>
#include <vector>

#include "resample/segmenter.hpp"
#include "sentinel2/image.hpp"

namespace is2::label {

struct DriftConfig {
  double max_shift_m = 800.0;   ///< search radius
  double step_m = 25.0;         ///< radial step
  int directions = 16;          ///< compass directions searched
  double water_threshold_m = 0.12;   ///< h_rel below this looks like water
  double thick_threshold_m = 0.22;   ///< h_rel above this looks like thick ice
  std::size_t max_segments = 40'000; ///< subsample cap for the search
};

struct DriftEstimate {
  geo::Xy shift{0.0, 0.0};  ///< shift to apply to IS2 positions when sampling
                            ///< (equal and opposite to the S2 image shift)
  double score = 0.0;       ///< consistency score of the best shift, in [0,1]
  double score_unshifted = 0.0;  ///< score at zero shift, for comparison
};

/// Estimate drift from segments (with rolling baseline already available).
DriftEstimate estimate_drift(const s2::ClassRaster& raster,
                             const std::vector<resample::Segment>& segments,
                             const std::vector<double>& baseline,
                             const DriftConfig& config = {});

/// Compass rendering of a shift vector, e.g. "550 m / NW" (Table I format).
std::string describe_shift(const geo::Xy& shift);

}  // namespace is2::label
