// Auto-labeling of IS2 2m segments from classified S2 imagery (paper
// §III.A.3/4), including the paper's two cleanup mechanisms:
//
//  * plausibility rules — a label that contradicts the segment's relative
//    elevation (open water high above the sea-level proxy, thick ice at sea
//    level) is flagged;
//  * manual correction emulation — the paper manually corrected transition
//    regions between surface types and cloud-affected stretches. A human
//    with the imagery and the elevation profile resolves most flagged
//    segments correctly, so flagged segments are re-labeled to ground truth
//    with probability `manual_fix_rate` (the remainder keeps the noisy
//    label). This is the documented substitution for human QC; the noise
//    level it leaves behind is what the classifier trains against.
#pragma once

#include <cstdint>
#include <vector>

#include "label/overlay.hpp"
#include "resample/segmenter.hpp"
#include "sentinel2/image.hpp"

namespace is2::label {

struct AutoLabelConfig {
  OverlayConfig overlay;
  double transition_zone_m = 12.0;  ///< flag segments this close to a label change
  double manual_fix_rate = 0.75;    ///< fraction of flagged segments a human fixes
  double water_h_max = 0.12;        ///< plausibility: open water must be below this
  double thick_h_min = 0.20;        ///< plausibility: thick ice must be above this
  /// Along-track gap beyond which to_features zeroes the delta features.
  /// < 0 = auto: 1.5x the segmenter window (resolved by the pipeline; 3 m
  /// when auto_label is called standalone); 0 = never break; > 0 = metres.
  double feature_gap_m = -1.0;
  std::uint64_t seed = 1234;
};

/// Labeled training dataset for one beam.
struct LabeledBeam {
  std::vector<resample::Segment> segments;
  std::vector<double> baseline;                 ///< rolling sea-level proxy
  std::vector<resample::FeatureRow> features;   ///< unscaled
  std::vector<atl03::SurfaceClass> labels;      ///< Unknown = unusable for training

  // Bookkeeping for the labeling-quality experiments.
  std::size_t n_unknown = 0;        ///< cloud-masked / off-raster segments
  std::size_t n_flagged = 0;        ///< transition or plausibility flags
  std::size_t n_manual_fixed = 0;   ///< flagged segments resolved "by hand"

  /// Agreement of final labels with simulator truth over labeled segments.
  double label_accuracy() const;
};

/// Label one beam's segments against a classified raster.
LabeledBeam auto_label(const s2::ClassRaster& raster,
                       std::vector<resample::Segment> segments,
                       const AutoLabelConfig& config = {});

}  // namespace is2::label
