// IS2 <-> S2 overlay: sample a classified Sentinel-2 raster at (shifted)
// IS2 segment positions. Both datasets are already in EPSG:3976 (the paper's
// precondition for comparing IS2 points with S2 pixels). A 3x3 neighborhood
// majority vote suppresses single-pixel segmentation speckle.
#pragma once

#include <vector>

#include "atl03/types.hpp"
#include "resample/segmenter.hpp"
#include "sentinel2/image.hpp"

namespace is2::label {

struct OverlayConfig {
  geo::Xy shift{0.0, 0.0};  ///< applied to IS2 positions before sampling
                            ///< (equivalently: shift of the S2 image)
  int vote_radius_px = 1;   ///< neighborhood half-size for the majority vote
};

/// Class label for one segment position; Unknown when the (shifted) position
/// falls outside the raster or in cloud-masked pixels.
atl03::SurfaceClass sample_label(const s2::ClassRaster& raster, const geo::Xy& position,
                                 const OverlayConfig& config);

/// Vectorized overlay over segments.
std::vector<atl03::SurfaceClass> overlay_labels(const s2::ClassRaster& raster,
                                                const std::vector<resample::Segment>& segments,
                                                const OverlayConfig& config = {});

}  // namespace is2::label
