#include "label/drift.hpp"

#include <cmath>
#include <cstdio>

#include "geo/wgs84.hpp"
#include "label/overlay.hpp"

namespace is2::label {

using atl03::SurfaceClass;

namespace {

/// Consistency between a segment's relative elevation and an S2 class:
/// +1 for physically consistent, -1 for contradiction, 0 for ambiguous.
double consistency(double h_rel, SurfaceClass s2_class, const DriftConfig& cfg) {
  switch (s2_class) {
    case SurfaceClass::OpenWater:
      if (h_rel < cfg.water_threshold_m) return 1.0;
      if (h_rel > cfg.thick_threshold_m) return -1.0;
      return 0.0;
    case SurfaceClass::ThickIce:
      if (h_rel > cfg.thick_threshold_m) return 1.0;
      if (h_rel < cfg.water_threshold_m) return -1.0;
      return 0.0;
    case SurfaceClass::ThinIce:
      // Thin ice sits between the thresholds; weak evidence either way.
      return (h_rel >= 0.0 && h_rel <= cfg.thick_threshold_m) ? 0.5 : -0.5;
    default:
      return 0.0;
  }
}

double score_shift(const s2::ClassRaster& raster, const std::vector<resample::Segment>& segments,
                   const std::vector<double>& baseline, std::size_t stride, const geo::Xy& shift,
                   const DriftConfig& cfg) {
  OverlayConfig ov;
  ov.shift = shift;
  ov.vote_radius_px = 0;  // single-pixel sampling keeps the search sharp
  double score = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < segments.size(); i += stride) {
    const auto& seg = segments[i];
    const SurfaceClass c = sample_label(raster, {seg.x, seg.y}, ov);
    if (c == SurfaceClass::Unknown) continue;
    score += consistency(seg.h_mean - baseline[i], c, cfg);
    ++used;
  }
  return used ? score / static_cast<double>(used) : -1.0;
}

}  // namespace

DriftEstimate estimate_drift(const s2::ClassRaster& raster,
                             const std::vector<resample::Segment>& segments,
                             const std::vector<double>& baseline, const DriftConfig& cfg) {
  DriftEstimate best;
  if (segments.empty() || baseline.size() != segments.size()) return best;
  const std::size_t stride = std::max<std::size_t>(1, segments.size() / cfg.max_segments);

  best.score_unshifted = score_shift(raster, segments, baseline, stride, {0.0, 0.0}, cfg);
  best.score = best.score_unshifted;
  best.shift = {0.0, 0.0};

  const int n_radii = static_cast<int>(cfg.max_shift_m / cfg.step_m);
  // Polar grid search, parallel over directions.
  std::vector<DriftEstimate> per_dir(static_cast<std::size_t>(cfg.directions));
#pragma omp parallel for schedule(dynamic)
  for (int d = 0; d < cfg.directions; ++d) {
    const double theta = 2.0 * geo::pi * static_cast<double>(d) / cfg.directions;
    DriftEstimate local;
    local.score = -2.0;
    for (int r = 1; r <= n_radii; ++r) {
      const double dist = static_cast<double>(r) * cfg.step_m;
      const geo::Xy shift{dist * std::cos(theta), dist * std::sin(theta)};
      const double sc = score_shift(raster, segments, baseline, stride, shift, cfg);
      if (sc > local.score) {
        local.score = sc;
        local.shift = shift;
      }
    }
    per_dir[static_cast<std::size_t>(d)] = local;
  }
  for (const auto& cand : per_dir) {
    if (cand.score > best.score) {
      best.score = cand.score;
      best.shift = cand.shift;
    }
  }
  best.score_unshifted = score_shift(raster, segments, baseline, stride, {0.0, 0.0}, cfg);
  return best;
}

std::string describe_shift(const geo::Xy& shift) {
  const double dist = std::hypot(shift.x, shift.y);
  if (dist < 1.0) return "0 m";
  // Projected +y is grid north here (scene rasters are north-up in EPSG:3976).
  static const char* names[8] = {"E", "NE", "N", "NW", "W", "SW", "S", "SE"};
  double angle = std::atan2(shift.y, shift.x);  // 0 = E, pi/2 = N
  if (angle < 0.0) angle += 2.0 * geo::pi;
  const int sector = static_cast<int>(std::floor(angle / (geo::pi / 4.0) + 0.5)) % 8;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f m / %s", dist, names[sector]);
  return buf;
}

}  // namespace is2::label
