#include "label/overlay.hpp"

#include <array>

namespace is2::label {

using atl03::SurfaceClass;

SurfaceClass sample_label(const s2::ClassRaster& raster, const geo::Xy& position,
                          const OverlayConfig& config) {
  const geo::Xy p{position.x + config.shift.x, position.y + config.shift.y};
  std::size_t row, col;
  if (!raster.transform().world_to_pixel(p, raster.rows(), raster.cols(), row, col))
    return SurfaceClass::Unknown;

  if (config.vote_radius_px <= 0) return raster.at(row, col);

  std::array<int, 3> votes{0, 0, 0};
  const int r0 = static_cast<int>(row), c0 = static_cast<int>(col);
  const int rad = config.vote_radius_px;
  for (int dr = -rad; dr <= rad; ++dr) {
    for (int dc = -rad; dc <= rad; ++dc) {
      const int r = r0 + dr, c = c0 + dc;
      if (r < 0 || c < 0 || r >= static_cast<int>(raster.rows()) ||
          c >= static_cast<int>(raster.cols()))
        continue;
      const SurfaceClass v = raster.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      if (v == SurfaceClass::Unknown) continue;
      ++votes[static_cast<int>(v)];
    }
  }
  // The center pixel must itself be usable; a cloud-masked center stays
  // Unknown even if neighbors vote (mirrors the paper's cloud mislabeling
  // that manual correction later has to handle).
  if (raster.at(row, col) == SurfaceClass::Unknown) return SurfaceClass::Unknown;
  int best = 0;
  for (int c = 1; c < 3; ++c)
    if (votes[c] > votes[best]) best = c;
  if (votes[best] == 0) return SurfaceClass::Unknown;
  return static_cast<SurfaceClass>(best);
}

std::vector<SurfaceClass> overlay_labels(const s2::ClassRaster& raster,
                                         const std::vector<resample::Segment>& segments,
                                         const OverlayConfig& config) {
  std::vector<SurfaceClass> out(segments.size(), SurfaceClass::Unknown);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(segments.size()); ++i) {
    const auto& seg = segments[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = sample_label(raster, {seg.x, seg.y}, config);
  }
  return out;
}

}  // namespace is2::label
