#include "label/autolabel.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace is2::label {

using atl03::SurfaceClass;

double LabeledBeam::label_accuracy() const {
  std::size_t n = 0, correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == SurfaceClass::Unknown || segments[i].truth == SurfaceClass::Unknown)
      continue;
    ++n;
    if (labels[i] == segments[i].truth) ++correct;
  }
  return n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

LabeledBeam auto_label(const s2::ClassRaster& raster, std::vector<resample::Segment> segments,
                       const AutoLabelConfig& cfg) {
  LabeledBeam out;
  out.segments = std::move(segments);
  out.baseline = resample::rolling_baseline(out.segments);
  out.features = resample::to_features(out.segments, out.baseline,
                                       cfg.feature_gap_m < 0.0 ? 3.0 : cfg.feature_gap_m);
  out.labels = overlay_labels(raster, out.segments, cfg.overlay);

  const std::size_t n = out.segments.size();
  util::Rng rng(util::hash64(cfg.seed ^ 0xAB01ull));

  // Pass 1: statistics + transition flags from label changes.
  std::vector<std::uint8_t> flagged(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (out.labels[i] == SurfaceClass::Unknown) {
      ++out.n_unknown;
      continue;
    }
    // Transition zone: a differing *known* label within the zone radius.
    for (std::size_t j = i; j-- > 0;) {
      if (out.segments[i].s - out.segments[j].s > cfg.transition_zone_m) break;
      if (out.labels[j] != SurfaceClass::Unknown && out.labels[j] != out.labels[i]) {
        flagged[i] = 1;
        break;
      }
    }
    if (!flagged[i]) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (out.segments[j].s - out.segments[i].s > cfg.transition_zone_m) break;
        if (out.labels[j] != SurfaceClass::Unknown && out.labels[j] != out.labels[i]) {
          flagged[i] = 1;
          break;
        }
      }
    }
    // Plausibility rules against the relative elevation.
    const double h_rel = out.segments[i].h_mean - out.baseline[i];
    if (out.labels[i] == SurfaceClass::OpenWater && h_rel > cfg.water_h_max) flagged[i] = 1;
    if (out.labels[i] == SurfaceClass::ThickIce && h_rel < cfg.thick_h_min) flagged[i] = 1;
  }

  // Pass 2: manual-correction emulation. A human reviewing the imagery and
  // the photon profile resolves most flagged segments to the true class;
  // unresolved flags keep the (possibly wrong) automatic label.
  for (std::size_t i = 0; i < n; ++i) {
    if (!flagged[i] || out.labels[i] == SurfaceClass::Unknown) continue;
    ++out.n_flagged;
    if (out.segments[i].truth != SurfaceClass::Unknown && rng.bernoulli(cfg.manual_fix_rate)) {
      if (out.labels[i] != out.segments[i].truth) ++out.n_manual_fixed;
      out.labels[i] = out.segments[i].truth;
    }
  }
  return out;
}

}  // namespace is2::label
