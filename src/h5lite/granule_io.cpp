#include "h5lite/granule_io.hpp"

#include <atomic>
#include <cstdint>

namespace is2::h5 {

namespace {
std::atomic<std::uint64_t> g_load_granule_calls{0};
}  // namespace

std::uint64_t load_granule_call_count() {
  return g_load_granule_calls.load(std::memory_order_relaxed);
}

using atl03::BeamData;
using atl03::BeamId;
using atl03::Granule;

File to_file(const Granule& granule) {
  File f;
  f.set_attr("/ancillary_data/granule_id", granule.id);
  f.set_attr("/ancillary_data/epoch_time", granule.epoch_time);
  f.set_attr("/ancillary_data/track_origin_x", granule.track_origin.x);
  f.set_attr("/ancillary_data/track_origin_y", granule.track_origin.y);
  f.set_attr("/ancillary_data/track_heading", granule.track_heading);
  f.set_attr("/ancillary_data/track_length", granule.track_length);
  f.set_attr("/ancillary_data/scene_seed", static_cast<std::int64_t>(granule.seed));
  f.set_attr("/ancillary_data/n_beams", static_cast<std::int64_t>(granule.beams.size()));

  for (const auto& b : granule.beams) {
    b.check_consistent();
    const std::string g = std::string("/") + atl03::beam_name(b.beam);
    f.put(g + "/heights/delta_time", b.delta_time);
    f.put(g + "/heights/lat_ph", b.lat);
    f.put(g + "/heights/lon_ph", b.lon);
    f.put(g + "/heights/h_ph", b.h);
    f.put(g + "/heights/dist_ph_along", b.along_track);
    f.put(g + "/heights/signal_conf_ph", b.signal_conf);
    f.put(g + "/bckgrd_atlas/delta_time", b.bckgrd_delta_time);
    f.put(g + "/bckgrd_atlas/bckgrd_rate", b.bckgrd_rate);
    if (!b.truth_class.empty()) f.put(g + "/truth/surface_type", b.truth_class);
  }
  return f;
}

Granule from_file(const File& f) {
  Granule g;
  g.id = f.attr_string("/ancillary_data/granule_id");
  g.epoch_time = f.attr_double("/ancillary_data/epoch_time");
  g.track_origin.x = f.attr_double("/ancillary_data/track_origin_x");
  g.track_origin.y = f.attr_double("/ancillary_data/track_origin_y");
  g.track_heading = f.attr_double("/ancillary_data/track_heading");
  g.track_length = f.attr_double("/ancillary_data/track_length");
  g.seed = static_cast<std::uint64_t>(f.attr_int("/ancillary_data/scene_seed"));

  for (int bi = 0; bi < 6; ++bi) {
    const auto beam = static_cast<BeamId>(bi);
    const std::string base = std::string("/") + atl03::beam_name(beam);
    if (!f.contains(base + "/heights/h_ph")) continue;
    BeamData b;
    b.beam = beam;
    b.delta_time = f.get<double>(base + "/heights/delta_time");
    b.lat = f.get<double>(base + "/heights/lat_ph");
    b.lon = f.get<double>(base + "/heights/lon_ph");
    b.h = f.get<double>(base + "/heights/h_ph");
    b.along_track = f.get<double>(base + "/heights/dist_ph_along");
    b.signal_conf = f.get<std::int8_t>(base + "/heights/signal_conf_ph");
    b.bckgrd_delta_time = f.get<double>(base + "/bckgrd_atlas/delta_time");
    b.bckgrd_rate = f.get<double>(base + "/bckgrd_atlas/bckgrd_rate");
    if (f.contains(base + "/truth/surface_type"))
      b.truth_class = f.get<std::uint8_t>(base + "/truth/surface_type");
    b.check_consistent();
    g.beams.push_back(std::move(b));
  }
  if (g.beams.empty()) throw H5Error("granule_io: file contains no beams");
  return g;
}

void save_granule(const Granule& granule, const std::string& filename) {
  to_file(granule).save(filename);
}

Granule load_granule(const std::string& filename) {
  g_load_granule_calls.fetch_add(1, std::memory_order_relaxed);
  return from_file(File::load(filename));
}

GranuleMeta read_granule_meta(const std::string& filename) {
  const FileMeta meta = File::scan(filename);

  GranuleMeta out;
  const auto id = meta.attrs.find("/ancillary_data/granule_id");
  if (id == meta.attrs.end() || !std::holds_alternative<std::string>(id->second))
    throw H5Error("granule_io: missing granule_id attribute in " + filename);
  out.id = std::get<std::string>(id->second);
  for (const auto& [path, info] : meta.datasets) out.payload_bytes += info.nbytes;

  for (int bi = 0; bi < 6; ++bi) {
    const auto beam = static_cast<BeamId>(bi);
    const auto it = meta.datasets.find(std::string("/") + atl03::beam_name(beam) +
                                       "/heights/h_ph");
    if (it == meta.datasets.end()) continue;
    out.beams.push_back(BeamMeta{beam, it->second.count()});
  }
  if (out.beams.empty()) throw H5Error("granule_io: file contains no beams");
  return out;
}

}  // namespace is2::h5
