#include "h5lite/h5file.hpp"

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

namespace is2::h5 {

std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F64: return 8;
    case DType::F32: return 4;
    case DType::I64: return 8;
    case DType::I32: return 4;
    case DType::U8: return 1;
    case DType::I8: return 1;
  }
  throw H5Error("h5lite: unknown dtype");
}

const char* dtype_name(DType t) {
  switch (t) {
    case DType::F64: return "f64";
    case DType::F32: return "f32";
    case DType::I64: return "i64";
    case DType::I32: return "i32";
    case DType::U8: return "u8";
    case DType::I8: return "i8";
  }
  return "?";
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

const File::Entry& File::entry(const std::string& path) const {
  auto it = datasets_.find(path);
  if (it == datasets_.end()) throw H5Error("h5lite: no dataset at " + path);
  return it->second;
}

void File::validate_path(const std::string& path) {
  if (path.empty() || path[0] != '/')
    throw H5Error("h5lite: dataset path must start with '/': " + path);
}

std::vector<std::string> File::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, e] : datasets_)
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  return out;
}

const AttrValue& File::attr(const std::string& path) const {
  auto it = attrs_.find(path);
  if (it == attrs_.end()) throw H5Error("h5lite: no attribute at " + path);
  return it->second;
}

double File::attr_double(const std::string& path) const {
  const auto& v = attr(path);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  throw H5Error("h5lite: attribute " + path + " is not numeric");
}

std::int64_t File::attr_int(const std::string& path) const {
  const auto& v = attr(path);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw H5Error("h5lite: attribute " + path + " is not an integer");
}

std::string File::attr_string(const std::string& path) const {
  const auto& v = attr(path);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw H5Error("h5lite: attribute " + path + " is not a string");
}

std::size_t File::payload_bytes() const {
  std::size_t n = 0;
  for (const auto& [path, e] : datasets_) n += e.bytes.size();
  return n;
}

namespace {

constexpr char kMagic[4] = {'H', '5', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;

using Writer = ByteWriter;
using Reader = ByteReader;

}  // namespace

std::vector<std::uint8_t> read_file_bytes(const std::string& filename) {
  std::ifstream in(filename, std::ios::binary | std::ios::ate);
  if (!in) throw H5Error("h5lite: cannot open: " + filename);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> buf(size);
  in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(size));
  if (!in) throw H5Error("h5lite: read failed: " + filename);
  return buf;
}

void write_file_atomic(const std::string& filename, std::span<const std::uint8_t> bytes) {
  // Same-directory temp name (rename across filesystems is not atomic).
  // pid + counter keeps concurrent writers of the same target from
  // clobbering each other's temp file.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = filename + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw H5Error("h5lite: cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw H5Error("h5lite: write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, filename, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw H5Error("h5lite: rename failed: " + tmp + " -> " + filename + ": " + ec.message());
  }
}

std::vector<std::uint8_t> File::serialize() const {
  Writer body;
  body.raw(static_cast<std::uint32_t>(datasets_.size()));
  for (const auto& [path, e] : datasets_) {
    body.str(path);
    body.raw(static_cast<std::uint8_t>(e.dtype));
    body.raw(static_cast<std::uint8_t>(e.shape.size()));
    for (auto d : e.shape) body.raw(static_cast<std::uint64_t>(d));
    body.raw(static_cast<std::uint64_t>(e.bytes.size()));
    body.bytes(e.bytes.data(), e.bytes.size());
  }
  body.raw(static_cast<std::uint32_t>(attrs_.size()));
  for (const auto& [path, v] : attrs_) {
    body.str(path);
    if (const auto* d = std::get_if<double>(&v)) {
      body.raw(static_cast<std::uint8_t>(0));
      body.raw(*d);
    } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
      body.raw(static_cast<std::uint8_t>(1));
      body.raw(*i);
    } else {
      body.raw(static_cast<std::uint8_t>(2));
      body.str(std::get<std::string>(v));
    }
  }

  Writer out;
  out.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
  out.raw(kVersion);
  out.raw(static_cast<std::uint64_t>(body.buf.size()));
  out.bytes(body.buf.data(), body.buf.size());
  out.raw(crc32(body.buf));
  return out.buf;
}

File File::deserialize(std::span<const std::uint8_t> buffer) {
  Reader r(buffer);
  char magic[4];
  r.bytes(reinterpret_cast<std::uint8_t*>(magic), 4);
  if (std::memcmp(magic, kMagic, 4) != 0) throw H5Error("h5lite: bad magic");
  const auto version = r.raw<std::uint32_t>();
  if (version != kVersion) throw H5Error("h5lite: unsupported version");
  const auto payload = r.raw<std::uint64_t>();
  if (16 + payload + 4 > buffer.size()) throw H5Error("h5lite: truncated payload");
  const std::uint32_t want =
      crc32(buffer.subspan(16, static_cast<std::size_t>(payload)));

  File f;
  const auto n_datasets = r.raw<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_datasets; ++i) {
    const std::string path = r.str();
    Entry e;
    const auto dtype_raw = r.raw<std::uint8_t>();
    if (dtype_raw > static_cast<std::uint8_t>(DType::I8)) throw H5Error("h5lite: bad dtype");
    e.dtype = static_cast<DType>(dtype_raw);
    const auto ndim = r.raw<std::uint8_t>();
    e.shape.resize(ndim);
    std::uint64_t n = 1;
    for (auto& d : e.shape) {
      d = r.raw<std::uint64_t>();
      n *= d;
    }
    const auto nbytes = r.raw<std::uint64_t>();
    if (nbytes != n * dtype_size(e.dtype)) throw H5Error("h5lite: dataset size mismatch");
    e.bytes.resize(static_cast<std::size_t>(nbytes));
    r.bytes(e.bytes.data(), e.bytes.size());
    f.datasets_[path] = std::move(e);
  }
  const auto n_attrs = r.raw<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_attrs; ++i) {
    const std::string path = r.str();
    const auto kind = r.raw<std::uint8_t>();
    switch (kind) {
      case 0: f.attrs_[path] = r.raw<double>(); break;
      case 1: f.attrs_[path] = r.raw<std::int64_t>(); break;
      case 2: f.attrs_[path] = r.str(); break;
      default: throw H5Error("h5lite: bad attribute kind");
    }
  }
  const auto got = Reader(buffer.subspan(r.pos())).raw<std::uint32_t>();
  if (got != want) throw H5Error("h5lite: checksum mismatch (corrupt file)");
  return f;
}

void File::save(const std::string& filename) const {
  // Atomic write-then-rename: a crash mid-save leaves the previous file (or
  // nothing), never a truncated container.
  write_file_atomic(filename, serialize());
}

namespace {

/// Incremental little-endian reads off a stream for File::scan (the buffer
/// Reader above requires the whole file in memory, which scan avoids).
/// Lengths read from the file are validated against the file size before
/// any allocation or seek, so a corrupt length field raises H5Error instead
/// of attempting a multi-GiB allocation.
class StreamReader {
 public:
  StreamReader(std::ifstream& in, std::uint64_t file_size) : in_(in), file_size_(file_size) {}

  template <typename T>
  T raw() {
    T v;
    in_.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in_) throw H5Error("h5lite: truncated file");
    return v;
  }
  std::string str() {
    const auto n = raw<std::uint32_t>();
    check_remaining(n, "h5lite: truncated string");
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw H5Error("h5lite: truncated string");
    return s;
  }
  void skip(std::uint64_t n) {
    check_remaining(n, "h5lite: truncated file");
    in_.seekg(static_cast<std::streamoff>(n), std::ios::cur);
    if (!in_) throw H5Error("h5lite: truncated file");
  }

 private:
  void check_remaining(std::uint64_t n, const char* what) const {
    const auto pos = static_cast<std::uint64_t>(in_.tellg());
    if (pos > file_size_ || n > file_size_ - pos) throw H5Error(what);
  }

  std::ifstream& in_;
  std::uint64_t file_size_;
};

}  // namespace

FileMeta File::scan(const std::string& filename) {
  std::ifstream in(filename, std::ios::binary | std::ios::ate);
  if (!in) throw H5Error("h5lite: cannot open: " + filename);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  StreamReader r(in, file_size);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) throw H5Error("h5lite: bad magic");
  const auto version = r.raw<std::uint32_t>();
  if (version != kVersion) throw H5Error("h5lite: unsupported version");

  FileMeta meta;
  meta.payload_bytes = r.raw<std::uint64_t>();
  const auto n_datasets = r.raw<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_datasets; ++i) {
    const std::string path = r.str();
    DatasetInfo info;
    const auto dtype_raw = r.raw<std::uint8_t>();
    if (dtype_raw > static_cast<std::uint8_t>(DType::I8)) throw H5Error("h5lite: bad dtype");
    info.dtype = static_cast<DType>(dtype_raw);
    const auto ndim = r.raw<std::uint8_t>();
    info.shape.resize(ndim);
    for (auto& d : info.shape) d = r.raw<std::uint64_t>();
    info.nbytes = r.raw<std::uint64_t>();
    if (info.nbytes != info.count() * dtype_size(info.dtype))
      throw H5Error("h5lite: dataset size mismatch");
    r.skip(info.nbytes);  // the point of scan: never touch the payload
    meta.datasets[path] = std::move(info);
  }
  const auto n_attrs = r.raw<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_attrs; ++i) {
    const std::string path = r.str();
    const auto kind = r.raw<std::uint8_t>();
    switch (kind) {
      case 0: meta.attrs[path] = r.raw<double>(); break;
      case 1: meta.attrs[path] = r.raw<std::int64_t>(); break;
      case 2: meta.attrs[path] = r.str(); break;
      default: throw H5Error("h5lite: bad attribute kind");
    }
  }
  return meta;
}

File File::load(const std::string& filename) {
  return deserialize(read_file_bytes(filename));
}

}  // namespace is2::h5
