// h5lite: a small self-describing hierarchical container standing in for
// HDF5 (no system HDF5 in this environment). It keeps the properties the
// pipeline relies on: group/dataset paths ("/gt1r/heights/h_ph"), typed
// n-dimensional arrays, scalar/string attributes, and whole-file load cost
// proportional to data volume (which the Table II/V LOAD phase measures).
//
// On-disk layout (little-endian):
//   magic "H5LT" | u32 version | u64 payload_bytes
//   u32 n_datasets | per dataset: path, u8 dtype, u8 ndim, u64 dims[],
//                    u64 nbytes, raw bytes
//   u32 n_attrs    | per attr: path, u8 kind, value
//   u32 crc32 of everything after the 16-byte header
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace is2::h5 {

enum class DType : std::uint8_t { F64 = 0, F32 = 1, I64 = 2, I32 = 3, U8 = 4, I8 = 5 };

std::size_t dtype_size(DType t);
const char* dtype_name(DType t);

template <typename T>
struct dtype_of;
template <> struct dtype_of<double> { static constexpr DType value = DType::F64; };
template <> struct dtype_of<float> { static constexpr DType value = DType::F32; };
template <> struct dtype_of<std::int64_t> { static constexpr DType value = DType::I64; };
template <> struct dtype_of<std::int32_t> { static constexpr DType value = DType::I32; };
template <> struct dtype_of<std::uint8_t> { static constexpr DType value = DType::U8; };
template <> struct dtype_of<std::int8_t> { static constexpr DType value = DType::I8; };

/// Error type for malformed files, missing paths and dtype mismatches.
class H5Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using AttrValue = std::variant<double, std::int64_t, std::string>;

/// Shape/dtype of one dataset as recorded in its on-disk header.
struct DatasetInfo {
  DType dtype = DType::F64;
  std::vector<std::uint64_t> shape;
  std::uint64_t nbytes = 0;

  std::uint64_t count() const {
    std::uint64_t n = 1;
    for (auto d : shape) n *= d;
    return n;
  }
};

/// Everything a file describes about itself without its dataset payloads:
/// per-dataset dtype/shape and all attributes. Produced by File::scan, which
/// seeks over the raw dataset bytes instead of reading them, so the cost is
/// proportional to the number of entries, not the data volume. Because the
/// payload is never read, the trailing CRC is NOT verified — use File::load
/// when integrity matters more than speed.
struct FileMeta {
  std::map<std::string, DatasetInfo> datasets;
  std::map<std::string, AttrValue> attrs;
  std::uint64_t payload_bytes = 0;  ///< serialized body size from the file header

  bool contains(const std::string& path) const { return datasets.count(path) != 0; }
};

/// In-memory file tree with binary (de)serialization.
class File {
 public:
  /// Store a typed array under `path` (creates/overwrites). `shape` empty
  /// means 1-D of data.size().
  template <typename T>
  void put(const std::string& path, std::span<const T> data,
           std::vector<std::uint64_t> shape = {}) {
    validate_path(path);
    if (shape.empty()) shape = {static_cast<std::uint64_t>(data.size())};
    std::uint64_t n = 1;
    for (auto d : shape) n *= d;
    if (n != data.size()) throw H5Error("h5lite: shape does not match data size for " + path);
    Entry e;
    e.dtype = dtype_of<T>::value;
    e.shape = std::move(shape);
    e.bytes.resize(data.size() * sizeof(T));
    std::memcpy(e.bytes.data(), data.data(), e.bytes.size());
    datasets_[path] = std::move(e);
  }

  template <typename T>
  void put(const std::string& path, const std::vector<T>& data,
           std::vector<std::uint64_t> shape = {}) {
    put<T>(path, std::span<const T>(data), std::move(shape));
  }

  /// Read a typed array; throws H5Error on missing path or dtype mismatch.
  template <typename T>
  std::vector<T> get(const std::string& path) const {
    const Entry& e = entry(path);
    if (e.dtype != dtype_of<T>::value)
      throw H5Error("h5lite: dtype mismatch reading " + path + " (stored " +
                    dtype_name(e.dtype) + ")");
    std::vector<T> out(e.bytes.size() / sizeof(T));
    std::memcpy(out.data(), e.bytes.data(), e.bytes.size());
    return out;
  }

  bool contains(const std::string& path) const { return datasets_.count(path) != 0; }
  std::vector<std::uint64_t> shape(const std::string& path) const { return entry(path).shape; }
  DType dtype(const std::string& path) const { return entry(path).dtype; }
  /// All dataset paths with the given prefix (lexicographic order).
  std::vector<std::string> list(const std::string& prefix = "") const;

  void set_attr(const std::string& path, AttrValue value) { attrs_[path] = std::move(value); }
  bool has_attr(const std::string& path) const { return attrs_.count(path) != 0; }
  const AttrValue& attr(const std::string& path) const;
  double attr_double(const std::string& path) const;
  std::int64_t attr_int(const std::string& path) const;
  std::string attr_string(const std::string& path) const;

  std::size_t dataset_count() const { return datasets_.size(); }
  /// Total payload bytes across datasets (proxy for granule size).
  std::size_t payload_bytes() const;

  void save(const std::string& filename) const;
  static File load(const std::string& filename);
  /// Header-only read: dataset dtypes/shapes and attributes, skipping every
  /// dataset payload (and therefore the CRC check). O(entries), not O(bytes).
  static FileMeta scan(const std::string& filename);

  std::vector<std::uint8_t> serialize() const;
  static File deserialize(std::span<const std::uint8_t> buffer);

 private:
  struct Entry {
    DType dtype = DType::F64;
    std::vector<std::uint64_t> shape;
    std::vector<std::uint8_t> bytes;
  };

  const Entry& entry(const std::string& path) const;
  static void validate_path(const std::string& path);

  std::map<std::string, Entry> datasets_;
  std::map<std::string, AttrValue> attrs_;
};

/// CRC-32 (IEEE 802.3) used for file integrity.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// ---------------------------------------------------------------------------
// Generic little-endian block IO
// ---------------------------------------------------------------------------
// The primitives the h5lite format is built from, exposed so other versioned
// binary formats (e.g. the serve disk product cache) share one set of
// bounds-checked encode/decode routines instead of reinventing them.

/// Append-only little-endian byte buffer: fixed-width scalars via raw<T>(),
/// length-prefixed strings via str().
class ByteWriter {
 public:
  std::vector<std::uint8_t> buf;

  template <typename T>
  void raw(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
  }
  void bytes(const std::uint8_t* p, std::size_t n) { buf.insert(buf.end(), p, p + n); }
  void str(const std::string& s) {
    raw(static_cast<std::uint32_t>(s.size()));
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
};

/// Bounds-checked sequential reader over an in-memory buffer; every read
/// past the end throws H5Error("truncated ...") instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> b) : buf_(b) {}

  template <typename T>
  T raw() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > buf_.size()) throw H5Error("h5lite: truncated file");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void bytes(std::uint8_t* p, std::size_t n) {
    if (pos_ + n > buf_.size()) throw H5Error("h5lite: truncated file");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::string str() {
    const auto n = raw<std::uint32_t>();
    if (pos_ + n > buf_.size()) throw H5Error("h5lite: truncated string");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Whole-file read into memory; throws H5Error when unreadable.
std::vector<std::uint8_t> read_file_bytes(const std::string& filename);

/// Crash-safe whole-file write: the bytes land in a same-directory temp file
/// which is atomically renamed over `filename`, so readers only ever see the
/// old content or the complete new content — never a partial write.
void write_file_atomic(const std::string& filename, std::span<const std::uint8_t> bytes);

}  // namespace is2::h5
