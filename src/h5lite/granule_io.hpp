// ATL03 granule <-> h5lite container, mirroring the real product layout
// (/gtXX/heights/..., /gtXX/bckgrd_atlas/..., ancillary attributes). The
// Table II / Table V LOAD phase measures reading these files.
#pragma once

#include <string>

#include "atl03/granule.hpp"
#include "h5lite/h5file.hpp"

namespace is2::h5 {

/// Build the in-memory container for a granule.
File to_file(const atl03::Granule& granule);

/// Parse a container back into a granule; throws H5Error on schema problems.
atl03::Granule from_file(const File& file);

/// Convenience wrappers for disk I/O.
void save_granule(const atl03::Granule& granule, const std::string& filename);
atl03::Granule load_granule(const std::string& filename);

/// Process-wide count of load_granule() calls. Cheap observability hook for
/// code (and tests) that must prove a path avoids full granule decodes —
/// e.g. serve::ShardIndex::build, which reads shard metadata only.
std::uint64_t load_granule_call_count();

/// One beam as described by a granule file's headers.
struct BeamMeta {
  atl03::BeamId beam = atl03::BeamId::Gt1r;
  std::uint64_t n_photons = 0;
};

/// Granule identity and per-beam photon counts, read via File::scan without
/// decoding any dataset payload: O(entries) instead of O(photons), so index
/// construction over large shard sets stays near-instant.
struct GranuleMeta {
  std::string id;
  std::vector<BeamMeta> beams;
  std::uint64_t payload_bytes = 0;  ///< total dataset bytes (size proxy)

  const BeamMeta* find(atl03::BeamId beam) const {
    for (const auto& b : beams)
      if (b.beam == beam) return &b;
    return nullptr;
  }
};

/// Header-only metadata read (id / beams / photon counts). Throws H5Error on
/// malformed files or when no beam group is present.
GranuleMeta read_granule_meta(const std::string& filename);

}  // namespace is2::h5
