// ATL03 granule <-> h5lite container, mirroring the real product layout
// (/gtXX/heights/..., /gtXX/bckgrd_atlas/..., ancillary attributes). The
// Table II / Table V LOAD phase measures reading these files.
#pragma once

#include <string>

#include "atl03/granule.hpp"
#include "h5lite/h5file.hpp"

namespace is2::h5 {

/// Build the in-memory container for a granule.
File to_file(const atl03::Granule& granule);

/// Parse a container back into a granule; throws H5Error on schema problems.
atl03::Granule from_file(const File& file);

/// Convenience wrappers for disk I/O.
void save_granule(const atl03::Granule& granule, const std::string& filename);
atl03::Granule load_granule(const std::string& filename);

}  // namespace is2::h5
