// Exporters for the `is2::obs` layer: Prometheus text exposition and a JSON
// snapshot for a RegistrySnapshot, Chrome/Perfetto `trace_event` JSON for a
// span dump. All pure functions over snapshot values — no locking, no
// registry access, safe from any thread.
//
// Format notes:
//  * to_prometheus emits `# HELP` / `# TYPE` per metric name, `_total`
//    counters, and for histograms the conventional cumulative
//    `_bucket{le="..."}` series (+Inf included) with `_sum`/`_count`.
//    Bucket bounds are the log-scale bin edges converted back to
//    milliseconds. Output passes tools/check_prometheus.py (CI enforces).
//  * to_json carries the same points as nested objects — a superset of the
//    legacy ServiceMetrics fields, since every serve counter/latency now
//    lives in the registry.
//  * to_perfetto renders complete spans as "ph":"X" duration events and
//    instants as "ph":"i", ts/dur in microseconds, one fake process with
//    one row per obs thread ordinal (named via thread_labels()). Open
//    chrome://tracing or https://ui.perfetto.dev and load the file.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace is2::obs {

std::string to_prometheus(const RegistrySnapshot& snapshot);

std::string to_json(const RegistrySnapshot& snapshot);

/// `thread_labels` names the per-ordinal rows (pass obs::thread_labels()).
std::string to_perfetto(const std::vector<Span>& spans,
                        const std::vector<std::string>& thread_labels = {});

}  // namespace is2::obs
