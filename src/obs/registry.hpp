// `obs::Registry` — the process-facing catalogue of named, labeled
// instruments behind every `is2` metric, and the one place exporters read.
//
// Naming scheme (enforced here, documented in docs/observability.md):
//  * metric names match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*
//    and are namespaced `is2_<subsystem>_<noun>[_<unit>]`;
//  * Counter names must end in `_total` (the exposition-format convention
//    the CI lint checks);
//  * labels carry low-cardinality dimensions only (priority class, cache
//    tier, stage name) — never granule ids or other per-request values.
//
// Ownership / threading contract: the registry owns its instruments and
// never deletes or moves them, so the references returned by
// counter()/gauge()/histogram() stay valid for the registry's lifetime —
// register once at construction, keep the pointer, update lock-free on the
// hot path. Registration (get-or-create on (name, labels)) takes the
// registry mutex; updates never do (see instruments.hpp). snapshot() copies
// every instrument's current value under no global ordering: counters read
// relaxed, histograms under their own mutex.
//
// Registries are instantiable so each GranuleService / BatchScheduler /
// test owns isolated counters (the repo's tests build many services per
// process with exact-count assertions); `Registry::global()` provides the
// conventional process-wide instance for code without a natural owner.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/instruments.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::obs {

/// Label set of one instrument: sorted, deduplicated key/value pairs.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { counter = 0, gauge = 1, histogram = 2 };

const char* metric_type_name(MetricType type);

/// One instrument's identity + value at snapshot time.
struct MetricPoint {
  std::string name;
  std::string help;
  MetricType type = MetricType::counter;
  Labels labels;
  double value = 0.0;                   ///< counter / gauge
  HistogramMetric::Snapshot histogram;  ///< histogram only
};

struct RegistrySnapshot {
  std::vector<MetricPoint> points;  ///< sorted by (name, labels)
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Throws std::invalid_argument on a malformed name (bad
  /// charset, counter without `_total`), or when the same (name, labels)
  /// was registered as a different type. `help` is kept from the first
  /// registration.
  Counter& counter(const std::string& name, Labels labels = {}, const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {}, const std::string& help = "");
  HistogramMetric& histogram(const std::string& name, Labels labels = {},
                             const std::string& help = "");

  /// Copy every instrument's current value, sorted by (name, labels).
  RegistrySnapshot snapshot() const;

  /// Conventional process-wide instance (never destroyed).
  static Registry& global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& get_or_create(const std::string& name, Labels labels, const std::string& help,
                       MetricType type);

  mutable util::Mutex mutex_;
  /// Keyed by (name, labels): map keeps snapshot order deterministic and
  /// node addresses stable across inserts.
  std::map<std::pair<std::string, Labels>, Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace is2::obs
