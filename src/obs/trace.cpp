#include "obs/trace.hpp"

#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace is2::obs {

// ---------------------------------------------------------------------------
// Thread ordinals
// ---------------------------------------------------------------------------

namespace {

util::Mutex g_thread_labels_mutex;
std::vector<std::string>& thread_labels_storage() REQUIRES(g_thread_labels_mutex) {
  static std::vector<std::string>* labels = new std::vector<std::string>();
  return *labels;
}

std::uint32_t assign_thread_ordinal() {
  // Capture the thread's util label at first span so the Perfetto export
  // can name scheduler workers etc. without obs->util lifetime coupling.
  util::MutexLock lock(g_thread_labels_mutex);
  auto& labels = thread_labels_storage();
  labels.emplace_back(util::thread_label());
  return static_cast<std::uint32_t>(labels.size());
}

}  // namespace

std::uint32_t this_thread_ordinal() {
  thread_local std::uint32_t ordinal = assign_thread_ordinal();
  return ordinal;
}

std::vector<std::string> thread_labels() {
  util::MutexLock lock(g_thread_labels_mutex);
  return thread_labels_storage();
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(TraceConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_ = std::vector<Slot>(config_.ring_capacity);
}

bool Tracer::sampled(std::uint64_t trace_id) const {
  if (config_.sample_rate >= 1.0) return true;
  if (config_.sample_rate <= 0.0) return false;
  // Deterministic per id: the same trace samples the same way everywhere.
  const double u =
      static_cast<double>(util::hash64(trace_id) >> 11) * 0x1.0p-53;
  return u < config_.sample_rate;
}

// IS2_NO_SANITIZE_THREAD: the ring is a per-slot seqlock — the plain-`Span`
// payload is written/read around atomic seq words and fences, and readers
// discard any copy whose seq changed underneath them. TSan flags the payload
// access as a race (it is one, by design, with torn reads rejected after the
// fact), so the two sides of the seqlock are the repo's single suppression
// (docs/static-analysis.md#suppressions).
IS2_NO_SANITIZE_THREAD
void Tracer::publish(const Span* spans, std::size_t count) {
  const std::size_t cap = ring_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = ring_[ticket % cap];
    const std::uint64_t gen = ticket / cap;
    // Per-slot seqlock: odd while the writer is inside, even (2*gen + 2)
    // when stable. Two writers can only collide on one slot if the ring
    // wraps entirely within one write — with thousands of slots that is a
    // vanishing debug-telemetry race, and readers still never see a torn
    // span accepted (the seq double-check fails).
    slot.seq.store(2 * gen + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.span = spans[i];
    std::atomic_thread_fence(std::memory_order_release);
    slot.seq.store(2 * gen + 2, std::memory_order_release);
  }
}

void Tracer::record_instant(const char* name, std::uint64_t trace_id,
                            std::uint32_t parent_id) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = 0;  // instants don't parent anything
  s.parent_id = parent_id;
  s.start_ms = now_ms();
  s.dur_ms = 0.0;
  s.thread = this_thread_ordinal();
  s.instant = true;
  s.set_name(name);
  publish(&s, 1);
}

// Reader side of the seqlock above — same deliberate payload race, same
// suppression.
IS2_NO_SANITIZE_THREAD
std::vector<Span> Tracer::spans() const {
  const std::size_t cap = ring_.size();
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > cap ? head - cap : 0;
  std::vector<Span> out;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t t = begin; t < head; ++t) {
    const Slot& slot = ring_[t % cap];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1)) continue;  // empty or mid-write
    Span copy = slot.span;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // overwritten while reading
    out.push_back(copy);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------------

TraceContext::TraceContext(Tracer& tracer)
    : tracer_(&tracer),
      trace_id_(tracer.mint_trace_id()),
      sampled_(tracer.sampled(trace_id_)),
      mint_ms_(tracer.now_ms()) {}

std::size_t TraceContext::open(const char* name) {
  if (!tracer_) return 0;
  Span s;
  s.trace_id = trace_id_;
  s.span_id = next_span_id_++;
  s.parent_id = stack_.empty() ? kRootSpanId : buf_[stack_.back()].span_id;
  s.start_ms = tracer_->now_ms();
  s.thread = this_thread_ordinal();
  s.set_name(name);
  buf_.push_back(s);
  const std::size_t handle = buf_.size();  // 1-based so 0 can mean inactive
  stack_.push_back(handle - 1);
  return handle;
}

void TraceContext::close(std::size_t handle) {
  if (!tracer_ || handle == 0) return;
  Span& s = buf_[handle - 1];
  s.dur_ms = tracer_->now_ms() - s.start_ms;
  // Pop through any unclosed children (exception unwind order is LIFO, so
  // in practice this pops exactly the top entry).
  while (!stack_.empty() && stack_.back() >= handle - 1) stack_.pop_back();
}

void TraceContext::emit(const char* name, double start_ms, double dur_ms,
                        std::uint32_t parent_id) {
  if (!tracer_) return;
  Span s;
  s.trace_id = trace_id_;
  s.span_id = next_span_id_++;
  s.parent_id = parent_id;
  s.start_ms = start_ms;
  s.dur_ms = dur_ms;
  s.thread = this_thread_ordinal();
  s.set_name(name);
  buf_.push_back(s);
}

void TraceContext::finish(const char* root_name, bool force) {
  if (!tracer_ || finished_) return;
  finished_ = true;
  Span root;
  root.trace_id = trace_id_;
  root.span_id = kRootSpanId;
  root.parent_id = 0;
  root.start_ms = mint_ms_;
  root.dur_ms = tracer_->now_ms() - mint_ms_;
  root.thread = this_thread_ordinal();
  root.set_name(root_name);
  const bool keep = force || sampled_ || root.dur_ms >= tracer_->config().slow_ms;
  if (!keep) {
    buf_.clear();
    return;
  }
  tracer_->publish(&root, 1);
  if (!buf_.empty()) tracer_->publish(buf_.data(), buf_.size());
  buf_.clear();
}

// ---------------------------------------------------------------------------
// Thread-local binding
// ---------------------------------------------------------------------------

namespace {
thread_local TraceContext* t_current_trace = nullptr;
}

TraceContext* current_trace() { return t_current_trace; }

TraceBinding::TraceBinding(TraceContext* ctx) : prev_(t_current_trace) {
  t_current_trace = ctx;
  util::set_thread_trace_id(ctx && ctx->active() ? ctx->trace_id() : 0);
}

TraceBinding::~TraceBinding() {
  t_current_trace = prev_;
  util::set_thread_trace_id(prev_ && prev_->active() ? prev_->trace_id() : 0);
}

SpanScope::SpanScope(const char* name) : ctx_(t_current_trace) {
  if (ctx_) handle_ = ctx_->open(name);
}

SpanScope::~SpanScope() {
  if (ctx_) ctx_->close(handle_);
}

}  // namespace is2::obs
