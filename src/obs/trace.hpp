// Per-request tracing for the serving pipeline: a `TraceContext` is minted
// when a request enters `GranuleService`, rides the scheduler queue inside
// the job, and collects one `Span` per unit of work (queue wait, disk probe,
// shard load, each ProductBuilder stage) with parent/child nesting. On
// completion the context publishes its spans into the owning `Tracer`'s
// bounded lock-free ring buffer, from which `obs::to_perfetto` renders a
// Chrome/Perfetto timeline.
//
// Sampling is tail-based: span collection into the context's local buffer is
// cheap (vector pushes, no synchronization — one thread owns the context at
// any point in its life), and the keep/drop decision happens at finish():
// kept when the trace id sampled in (probabilistic, deterministic per id),
// when the caller forces it (errors, shed jobs), or when the root span is
// slower than `TraceConfig::slow_ms`. Instant events (coalesce, shed,
// displacement) bypass contexts and go straight to the ring, always on.
//
// Threading contract:
//  * Tracer is fully thread-safe; publish()/instant() are lock-free and
//    never block (a full ring overwrites the oldest spans). spans() is a
//    best-effort seqlock read: a span being overwritten mid-read is dropped,
//    never torn.
//  * A TraceContext is owned by one thread at a time (submitter, then the
//    worker that popped its job) and is not internally synchronized. Code
//    on other threads must not touch a foreign context — record instants
//    against its trace id instead.
//  * current_trace()/TraceBinding/SpanScope give stage code an ambient
//    context through a thread-local, so deep callees (ProductBuilder) emit
//    spans without threading a context parameter through every signature.
//    SpanScope is a no-op when no context is bound (batch builds).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace is2::obs {

/// One unit of work on the timeline. POD so ring slots can be copied
/// byte-wise under the seqlock.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;   ///< unique within its trace; root = 1
  std::uint32_t parent_id = 0; ///< 0 = root of the trace
  double start_ms = 0.0;       ///< since the owning Tracer's epoch
  double dur_ms = 0.0;
  std::uint32_t thread = 0;    ///< obs thread ordinal (see thread_labels())
  bool instant = false;        ///< point event (coalesce/shed), dur ignored
  char name[23] = {};          ///< truncated copy, always NUL-terminated

  void set_name(const char* n) {
    std::strncpy(name, n, sizeof name - 1);
    name[sizeof name - 1] = '\0';
  }
};

struct TraceConfig {
  std::size_t ring_capacity = 8192;  ///< spans retained (newest win)
  double sample_rate = 1.0;          ///< probability a trace is kept
  double slow_ms = 1000.0;           ///< traces at least this slow always kept
};

/// Ordinal of the calling thread (assigned on first use, starting at 1) —
/// small and dense so Span::thread stays 4 bytes. The thread's
/// util::thread_label() at first use is captured for the Perfetto export.
std::uint32_t this_thread_ordinal();

/// Snapshot of ordinal -> label (index = ordinal - 1; empty = unnamed).
std::vector<std::string> thread_labels();

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::uint64_t mint_trace_id() { return next_trace_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Deterministic per-id sampling decision (hash of the id vs sample_rate).
  bool sampled(std::uint64_t trace_id) const;

  /// Milliseconds since this tracer was constructed (the span time base).
  double now_ms() const { return epoch_.millis(); }

  /// Copy spans into the ring. Lock-free, never blocks; overwrites oldest.
  void publish(const Span* spans, std::size_t count);

  /// Always-on point event recorded directly into the ring (no context).
  void record_instant(const char* name, std::uint64_t trace_id, std::uint32_t parent_id = 0);

  /// Best-effort snapshot of the ring, oldest first. Spans overwritten
  /// while being read are skipped, never torn.
  std::vector<Span> spans() const;

  /// Total spans ever published (overwritten ones included).
  std::uint64_t published() const { return head_.load(std::memory_order_relaxed); }

  const TraceConfig& config() const { return config_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty; odd = being written
    Span span;
  };

  TraceConfig config_;
  std::vector<Slot> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};
  util::Timer epoch_;
};

/// Span collector for one request. Default-constructed contexts are inactive
/// (every operation a no-op) so untraced paths cost one branch.
class TraceContext {
 public:
  static constexpr std::uint32_t kRootSpanId = 1;

  TraceContext() = default;
  explicit TraceContext(Tracer& tracer);

  TraceContext(TraceContext&&) = default;
  TraceContext& operator=(TraceContext&&) = default;

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t trace_id() const { return trace_id_; }
  double mint_ms() const { return mint_ms_; }
  double now_ms() const { return tracer_ ? tracer_->now_ms() : 0.0; }

  /// Open a nested span (parent = innermost open span, else the root).
  /// Returns a handle for close(); 0 when inactive.
  std::size_t open(const char* name);
  void close(std::size_t handle);

  /// Record a fully-formed span (for intervals measured across threads,
  /// e.g. queue wait: start under the submitter, end under the worker).
  void emit(const char* name, double start_ms, double dur_ms,
            std::uint32_t parent_id = kRootSpanId);

  /// Close the trace: emits the root span `root_name` spanning mint..now,
  /// then publishes everything when the trace sampled in, `force` is set
  /// (error/shed paths), or the root is slower than slow_ms. Idempotent.
  void finish(const char* root_name, bool force = false);

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t trace_id_ = 0;
  bool sampled_ = false;
  bool finished_ = false;
  double mint_ms_ = 0.0;
  std::uint32_t next_span_id_ = kRootSpanId + 1;
  std::vector<Span> buf_;
  std::vector<std::size_t> stack_;  ///< indices into buf_ of open spans
};

/// The thread's ambient trace context (nullptr outside a TraceBinding).
TraceContext* current_trace();

/// RAII thread-local binding of a context (nullptr allowed = unbind). Also
/// mirrors the trace id into util::set_thread_trace_id for log-line tags.
class TraceBinding {
 public:
  explicit TraceBinding(TraceContext* ctx);
  ~TraceBinding();

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceContext* prev_;
};

/// RAII span on the ambient context; no-op when none is bound.
class SpanScope {
 public:
  explicit SpanScope(const char* name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceContext* ctx_;
  std::size_t handle_ = 0;
};

}  // namespace is2::obs
