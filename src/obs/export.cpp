#include "obs/export.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace is2::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Escape a Prometheus label value / JSON string body (same rules cover
/// both: backslash, double quote, newline).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && !extra_key) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escaped(v) + "\"";
  }
  if (extra_key) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

/// Upper edge of log-histogram bin `b`, back in milliseconds.
double bucket_upper_ms(const util::Histogram& hist, std::size_t b) {
  return std::pow(10.0, hist.lo() + static_cast<double>(b + 1) * hist.bin_width());
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const MetricPoint& p : snapshot.points) {
    if (p.name != last_name) {
      last_name = p.name;
      const std::string help = p.help.empty() ? "(no help)" : escaped(p.help);
      out += "# HELP " + p.name + " " + help + "\n";
      out += "# TYPE " + p.name + " " + metric_type_name(p.type) + "\n";
    }
    switch (p.type) {
      case MetricType::counter:
        appendf(out, "%s%s %.0f\n", p.name.c_str(), label_block(p.labels).c_str(), p.value);
        break;
      case MetricType::gauge:
        appendf(out, "%s%s %.17g\n", p.name.c_str(), label_block(p.labels).c_str(), p.value);
        break;
      case MetricType::histogram: {
        const util::Histogram& hist = p.histogram.histogram;
        std::size_t cum = 0;
        for (std::size_t b = 0; b < hist.bins(); ++b) {
          cum += hist.count(b);
          char le[32];
          std::snprintf(le, sizeof le, "%.6g", bucket_upper_ms(hist, b));
          appendf(out, "%s_bucket%s %zu\n", p.name.c_str(),
                  label_block(p.labels, "le", le).c_str(), cum);
        }
        appendf(out, "%s_bucket%s %zu\n", p.name.c_str(),
                label_block(p.labels, "le", "+Inf").c_str(), hist.total());
        appendf(out, "%s_sum%s %.17g\n", p.name.c_str(), label_block(p.labels).c_str(),
                p.histogram.stats.sum());
        appendf(out, "%s_count%s %zu\n", p.name.c_str(), label_block(p.labels).c_str(),
                p.histogram.stats.count());
        break;
      }
    }
  }
  return out;
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricPoint& p : snapshot.points) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"" + p.name + "\",\"type\":\"" + metric_type_name(p.type) +
           "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : p.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + k + "\":\"" + escaped(v) + "\"";
    }
    out += "}";
    if (p.type == MetricType::histogram) {
      const auto& s = p.histogram.stats;
      const double p50 =
          std::pow(10.0, util::histogram_quantile(p.histogram.histogram, 0.50));
      const double p99 =
          std::pow(10.0, util::histogram_quantile(p.histogram.histogram, 0.99));
      appendf(out,
              ",\"count\":%zu,\"sum_ms\":%.17g,\"mean_ms\":%.17g,\"min_ms\":%.17g,"
              "\"max_ms\":%.17g,\"p50_ms\":%.17g,\"p99_ms\":%.17g",
              s.count(), s.sum(), s.mean(), s.min(), s.max(), s.count() ? p50 : 0.0,
              s.count() ? p99 : 0.0);
    } else {
      appendf(out, ",\"value\":%.17g", p.value);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string to_perfetto(const std::vector<Span>& spans,
                        const std::vector<std::string>& thread_labels) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"is2\"}}";
  for (std::size_t i = 0; i < thread_labels.size(); ++i) {
    const std::string label =
        thread_labels[i].empty() ? "thread-" + std::to_string(i + 1) : thread_labels[i];
    appendf(out, ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%zu,", i + 1);
    out += "\"args\":{\"name\":\"" + escaped(label) + "\"}}";
  }
  for (const Span& s : spans) {
    appendf(out, ",\n  {\"name\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
            s.name, s.instant ? "i" : "X", s.thread, s.start_ms * 1e3);
    if (s.instant)
      out += ",\"s\":\"t\"";
    else
      appendf(out, ",\"dur\":%.3f", s.dur_ms * 1e3);
    appendf(out, ",\"args\":{\"trace_id\":\"%llu\",\"span_id\":%u,\"parent_id\":%u}}",
            static_cast<unsigned long long>(s.trace_id), s.span_id, s.parent_id);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace is2::obs
