// Instrument value types of the `is2::obs` metrics layer: Counter, Gauge and
// HistogramMetric. Instruments are created through an `obs::Registry` (which
// owns them and guarantees stable addresses); subsystems keep raw pointers
// and hit them directly on the hot path.
//
// Threading contract: every instrument is safe for concurrent use from any
// thread. Counter/Gauge updates are single relaxed atomics (lock-free,
// wait-free). HistogramMetric::observe takes a per-instrument mutex — the
// same granularity the pre-obs serve metrics used (one mutex around one
// StageLatency update), never a global lock — because util::RunningStats /
// util::Histogram are plain unsynchronized accumulators and the snapshot
// must be internally consistent (stats.count() == histogram.total()).
//
// HistogramMetric deliberately replicates `pipeline::StageLatency`'s binning
// (log10(ms) clamped to [10 us, 100 s], 10 bins per decade) with the same
// util types in the same add() order, so a snapshot assigned into a
// StageLatency is bit-identical to one maintained by StageLatency::add —
// that is what lets ServiceMetrics become a registry-read view without
// changing a single test expectation.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace is2::obs {

/// Monotonic event count. inc() is a relaxed fetch_add; value() a relaxed
/// load — exact under concurrency (every increment lands), ordering-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, resident bytes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency distribution instrument: Welford stats + log-scale histogram over
/// milliseconds, binned exactly like `pipeline::StageLatency` (see the file
/// comment). observe() is one uncontended mutex + two accumulator adds.
class HistogramMetric {
 public:
  // Mirrors StageLatency::kMinMs / kMaxMs / kBinsPerDecade. Asserted equal
  // in test_obs so the two can never drift apart silently.
  static constexpr double kMinMs = 1e-2;
  static constexpr double kMaxMs = 1e5;
  static constexpr std::size_t kBinsPerDecade = 10;

  struct Snapshot {
    util::RunningStats stats;
    util::Histogram histogram{-2.0, 5.0, 7 * kBinsPerDecade};
  };

  void observe(double ms) {
    util::MutexLock lock(mutex_);
    state_.stats.add(ms);
    state_.histogram.add(std::log10(std::clamp(ms, kMinMs, kMaxMs)));
  }

  Snapshot snapshot() const {
    util::MutexLock lock(mutex_);
    return state_;
  }

 private:
  mutable util::Mutex mutex_;
  Snapshot state_ GUARDED_BY(mutex_);
};

}  // namespace is2::obs
