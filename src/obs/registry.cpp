#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace is2::obs {

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::counter: return "counter";
    case MetricType::gauge: return "gauge";
    case MetricType::histogram: return "histogram";
  }
  return "?";
}

namespace {

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

void validate_name(const std::string& name, MetricType type) {
  if (name.empty()) throw std::invalid_argument("obs::Registry: empty metric name");
  for (std::size_t i = 0; i < name.size(); ++i)
    if (!valid_name_char(name[i], i == 0))
      throw std::invalid_argument("obs::Registry: bad metric name: " + name);
  if (type == MetricType::counter &&
      (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0))
    throw std::invalid_argument("obs::Registry: counter name must end in _total: " + name);
}

void validate_labels(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k.empty()) throw std::invalid_argument("obs::Registry: empty label name");
    for (std::size_t i = 0; i < k.size(); ++i) {
      const char c = k[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9')))
        throw std::invalid_argument("obs::Registry: bad label name: " + k);
    }
  }
}

}  // namespace

Registry::Entry& Registry::get_or_create(const std::string& name, Labels labels,
                                         const std::string& help, MetricType type) {
  validate_name(name, type);
  validate_labels(labels);
  std::sort(labels.begin(), labels.end());
  util::MutexLock lock(mutex_);
  auto [it, inserted] = entries_.try_emplace({name, std::move(labels)});
  Entry& entry = it->second;
  if (inserted) {
    entry.name = it->first.first;
    entry.help = help;
    entry.type = type;
    entry.labels = it->first.second;
    switch (type) {
      case MetricType::counter: entry.counter = std::make_unique<Counter>(); break;
      case MetricType::gauge: entry.gauge = std::make_unique<Gauge>(); break;
      case MetricType::histogram: entry.histogram = std::make_unique<HistogramMetric>(); break;
    }
  } else if (entry.type != type) {
    throw std::invalid_argument("obs::Registry: " + name + " already registered as " +
                                metric_type_name(entry.type));
  }
  return entry;
}

Counter& Registry::counter(const std::string& name, Labels labels, const std::string& help) {
  return *get_or_create(name, std::move(labels), help, MetricType::counter).counter;
}

Gauge& Registry::gauge(const std::string& name, Labels labels, const std::string& help) {
  return *get_or_create(name, std::move(labels), help, MetricType::gauge).gauge;
}

HistogramMetric& Registry::histogram(const std::string& name, Labels labels,
                                     const std::string& help) {
  return *get_or_create(name, std::move(labels), help, MetricType::histogram).histogram;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  util::MutexLock lock(mutex_);
  out.points.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricPoint p;
    p.name = entry.name;
    p.help = entry.help;
    p.type = entry.type;
    p.labels = entry.labels;
    switch (entry.type) {
      case MetricType::counter:
        p.value = static_cast<double>(entry.counter->value());
        break;
      case MetricType::gauge:
        p.value = entry.gauge->value();
        break;
      case MetricType::histogram:
        p.histogram = entry.histogram->snapshot();
        break;
    }
    out.points.push_back(std::move(p));
  }
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives static dtors
  return *instance;
}

}  // namespace is2::obs
