#include "mapred/engine.hpp"

#include "util/mutex.hpp"

namespace is2::mapred {

Engine::Engine(ClusterTopology topology) : topology_(topology) {
  if (topology_.executors == 0 || topology_.cores_per_executor == 0)
    throw std::invalid_argument("Engine: topology must have at least one executor and core");
  executors_.reserve(topology_.executors);
  for (std::size_t e = 0; e < topology_.executors; ++e)
    executors_.push_back(std::make_unique<util::ThreadPool>(topology_.cores_per_executor));
}

void Engine::run_stage_impl(std::size_t n_tasks, const std::function<void(std::size_t)>& task) {
  if (n_tasks == 0) return;
  const std::size_t n_exec = executors_.size();

  // Round-robin partition placement (Spark's default block placement).
  std::vector<std::vector<std::size_t>> assignment(n_exec);
  for (std::size_t i = 0; i < n_tasks; ++i) assignment[i % n_exec].push_back(i);

  // Each executor's cores pull from that executor's queue only.
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> cursors;
  cursors.reserve(n_exec);
  for (std::size_t e = 0; e < n_exec; ++e)
    cursors.push_back(std::make_unique<std::atomic<std::size_t>>(0));

  // Task exceptions are collected and rethrown only after every core has
  // drained: rethrowing from the first get() would unwind this frame while
  // other cores still reference `assignment`/`cursors`/`task` on it.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  util::Mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(n_exec * topology_.cores_per_executor);
  for (std::size_t e = 0; e < n_exec; ++e) {
    const auto& queue = assignment[e];
    auto& cursor = *cursors[e];
    for (std::size_t core = 0; core < topology_.cores_per_executor; ++core) {
      futures.push_back(executors_[e]->submit([&] {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
          if (slot >= queue.size()) return;
          try {
            task(queue[slot]);
          } catch (...) {
            {
              util::MutexLock lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }));
    }
  }
  for (auto& f : futures) f.get();  // barrier: all cores idle again
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace is2::mapred
