// Map-reduce engine standing in for the paper's PySpark/Dataproc cluster.
//
// Topology mirrors Spark's: `executors` (machines/JVMs) each with
// `cores_per_executor` task slots. Tasks are assigned to executors
// round-robin (like Spark's partition placement) and the cores of an
// executor pull from their executor's queue only — no cross-executor
// stealing, which is what makes the executors x cores grid of Tables II/V
// meaningful rather than collapsing into one flat thread pool.
//
// A staged job runs:
//   LOAD   — one task per input partition (granule shard file),
//   MAP    — cheap key/partition assignment over loaded data (Spark's lazy
//            narrow transformation; the paper reports ~0.3 s here),
//   REDUCE — the heavy per-partition computation.
// Each stage is barrier-timed; run_map_reduce returns results + timings.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace is2::mapred {

struct ClusterTopology {
  std::size_t executors = 1;
  std::size_t cores_per_executor = 1;
  std::size_t total_workers() const { return executors * cores_per_executor; }
};

struct StageTiming {
  double load_s = 0.0;
  double map_s = 0.0;
  double reduce_s = 0.0;
};

class Engine {
 public:
  explicit Engine(ClusterTopology topology);

  const ClusterTopology& topology() const { return topology_; }

  /// Execute `n_tasks` invocations of `task(i)` across the cluster and
  /// collect results in task order. Barrier: returns when all are done.
  template <typename R>
  std::vector<R> run_stage(std::size_t n_tasks, const std::function<R(std::size_t)>& task) {
    std::vector<R> results(n_tasks);
    run_stage_impl(n_tasks, [&](std::size_t i) { results[i] = task(i); });
    return results;
  }

  /// Void-result variant.
  void run_stage(std::size_t n_tasks, const std::function<void(std::size_t)>& task) {
    run_stage_impl(n_tasks, task);
  }

 private:
  void run_stage_impl(std::size_t n_tasks, const std::function<void(std::size_t)>& task);

  ClusterTopology topology_;
  std::vector<std::unique_ptr<util::ThreadPool>> executors_;
};

/// Result of a staged LOAD/MAP/REDUCE job.
template <typename Reduced>
struct MapReduceResult {
  std::vector<Reduced> results;  ///< one per partition, in partition order
  StageTiming timing;
};

/// Run a full staged job.
///  - `load(i)` ingests partition i (file read + decode);
///  - `map(partitions)` performs the cheap whole-dataset key assignment and
///    may reorder/annotate partitions in place;
///  - `reduce(partition, i)` does the heavy per-partition computation.
template <typename Loaded, typename Reduced>
MapReduceResult<Reduced> run_map_reduce(
    Engine& engine, std::size_t n_partitions, const std::function<Loaded(std::size_t)>& load,
    const std::function<void(std::vector<Loaded>&)>& map,
    const std::function<Reduced(Loaded&, std::size_t)>& reduce) {
  MapReduceResult<Reduced> out;
  util::Timer timer;

  std::vector<Loaded> partitions = engine.run_stage<Loaded>(n_partitions, load);
  out.timing.load_s = timer.seconds();

  timer.reset();
  map(partitions);
  out.timing.map_s = timer.seconds();

  timer.reset();
  out.results = engine.run_stage<Reduced>(
      n_partitions, [&](std::size_t i) { return reduce(partitions[i], i); });
  out.timing.reduce_s = timer.seconds();
  return out;
}

}  // namespace is2::mapred
