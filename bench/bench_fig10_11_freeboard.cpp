// Figs. 10 & 11: freeboard comparison along the two named tracks —
// (a) the 2m ATL03 freeboard product, (b) the ATL07-based (Koo-style)
// freeboard, (c) freeboard distributions (similar peaks), and (d) the point
// density difference (the paper's higher-resolution claim).
#include <cstdio>

#include "baseline/atl07.hpp"
#include "baseline/atl10.hpp"
#include "common.hpp"
#include "freeboard/freeboard.hpp"
#include "seasurface/detector.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  using atl03::SurfaceClass;

  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const core::Campaign campaign(data.config);
  auto trained = bench::load_or_train_lstm(data);
  const resample::FirstPhotonBiasCorrector fpb(data.config.instrument.dead_time_m,
                                               data.config.instrument.strong_channels);

  const struct {
    std::size_t pair;
    const char* fig;
  } tracks[] = {{1, "Fig. 10"}, {7, "Fig. 11"}};

  for (const auto& trk : tracks) {
    const auto granule = bench::regenerate_granule(data, trk.pair);
    const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                            campaign.corrections(), data.config.preprocess);
    auto segments = resample::resample(pre, data.config.segmenter);
    fpb.apply(segments);
    const auto features = resample::to_features(segments, resample::rolling_baseline(segments));
    const auto cls = core::classify_segments(trained.model, trained.scaler, features,
                                             data.config.sequence_window);

    // (a) our 2m product.
    const auto profile = seasurface::detect_sea_surface(
        segments, cls, seasurface::Method::NasaEquation, data.config.seasurface);
    const auto ours =
        freeboard::compute_freeboard(segments, cls, profile, data.config.freeboard);

    // (b) ATL07-based freeboard (Koo-style) + ATL10 emulation.
    const auto atl07 = baseline::build_atl07(pre);
    const auto atl10 = baseline::build_atl10(atl07);

    std::printf("\n%s: freeboard, IS2 track %s_gt2r\n", trk.fig,
                data.pairs[trk.pair].granule_id.c_str() + 6);

    const auto stats_ours = ours.stats();
    util::RunningStats stats_atl10;
    util::Histogram hist10(-0.2, 1.2, 56);
    for (const auto& fb : atl10.freeboards) {
      stats_atl10.add(fb.freeboard);
      hist10.add(fb.freeboard);
    }
    const double km = data.config.track_length_m / 1000.0;

    util::Table table;
    table.set_header({"Product", "Points", "Points/km", "Mean fb (m)", "Median-ish mode (m)",
                      "Std (m)"});
    const auto hist03 = ours.distribution();
    table.add_row({"ATL03 2m (ours)", std::to_string(ours.points.size()),
                   util::Table::fmt(static_cast<double>(ours.points.size()) / km, 0),
                   util::Table::fmt(stats_ours.mean(), 3), util::Table::fmt(hist03.mode(), 3),
                   util::Table::fmt(stats_ours.stddev(), 3)});
    table.add_row({"ATL07/ATL10-style", std::to_string(atl10.freeboards.size()),
                   util::Table::fmt(static_cast<double>(atl10.freeboards.size()) / km, 0),
                   util::Table::fmt(stats_atl10.mean(), 3), util::Table::fmt(hist10.mode(), 3),
                   util::Table::fmt(stats_atl10.stddev(), 3)});
    table.print();

    std::printf("(c) freeboard distributions\n  ATL03 2m:\n%s  ATL07/ATL10-style:\n%s",
                hist03.render(40).c_str(), hist10.render(40).c_str());
    std::printf("(d) point density: ATL03 %.0f pts/km vs ATL10-style %.0f pts/km  (ratio %.1fx; "
                "distribution peaks: %.3f vs %.3f m)\n",
                static_cast<double>(ours.points.size()) / km,
                static_cast<double>(atl10.freeboards.size()) / km,
                static_cast<double>(ours.points.size()) /
                    static_cast<double>(std::max<std::size_t>(atl10.freeboards.size(), 1)),
                hist03.mode(), hist10.mode());

    // Freeboard truth check (simulator advantage: exact truth exists).
    const auto surface = campaign.surface(trk.pair);
    std::vector<double> truth(ours.points.size());
    for (std::size_t i = 0; i < ours.points.size(); ++i) {
      // True freeboard at the segment center (sample of the texture field).
      truth[i] = surface.sample(ours.points[i].s).freeboard;
    }
    std::printf("RMS error vs simulator truth (correctly-classified points): %.3f m\n",
                freeboard::freeboard_rms_vs_truth(ours, truth));
  }
  return 0;
}
