// Fig. 5: distributed training performance curves — (a) speedup, (b) total
// training time, (c) data processed per second, (d) time per epoch, over
// 1..8 ranks. Reuses bench_table4's cached measurements when present.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "dist/trainer.hpp"

namespace {

void plot_series(const char* title, const std::vector<int>& ranks,
                 const std::vector<double>& values, const char* unit) {
  std::printf("\n%s\n", title);
  double peak = 0.0;
  for (double v : values) peak = std::max(peak, v);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const int width = peak > 0.0 ? static_cast<int>(values[i] / peak * 50.0) : 0;
    std::printf("  %d GPU%-2s | %-50.*s | %10.2f %s\n", ranks[i], ranks[i] > 1 ? "s" : "",
                width, "##################################################", values[i], unit);
  }
}

}  // namespace

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const std::vector<int> ranks{1, 2, 4, 6, 8};

  std::vector<double> total_s, epoch_s, data_per_s;
  const auto cached = bench::load_kv(data.cache_dir + "/table4.kv");
  if (cached) {
    auto find = [&](const std::string& key) {
      for (const auto& [k, v] : *cached)
        if (k == key) return v;
      return 0.0;
    };
    for (int r : ranks) {
      const std::string p = "r" + std::to_string(r) + "_";
      total_s.push_back(find(p + "total_s"));
      epoch_s.push_back(find(p + "epoch_s"));
      data_per_s.push_back(find(p + "data_per_s"));
    }
    std::fprintf(stderr, "[bench] using measurements cached by bench_table4\n");
  } else {
    std::fprintf(stderr, "[bench] no cache from bench_table4; measuring...\n");
    const auto td = bench::build_training_data(data, 8, 32'000);
    for (int r : ranks) {
      dist::TrainerConfig cfg;
      cfg.ranks = r;
      cfg.epochs = 4;
      const std::uint64_t seed = data.config.seed;
      const auto result = dist::train_distributed(
          [seed] {
            util::Rng rng(seed ^ 0x222ull);
            return nn::make_lstm_model(5, 6, rng);
          },
          td.train, td.test, cfg);
      total_s.push_back(result.total_time_s);
      epoch_s.push_back(result.time_per_epoch_s);
      data_per_s.push_back(result.samples_per_s);
    }
  }

  std::printf("Fig. 5: distributed model training via the Horovod-style framework\n");
  std::vector<double> speedup;
  for (double t : total_s) speedup.push_back(total_s[0] / t);
  plot_series("(a) distributed training speedup", ranks, speedup, "x");
  plot_series("(b) total training time", ranks, total_s, "s");
  plot_series("(c) data processed per second", ranks, data_per_s, "samples/s");
  plot_series("(d) time per epoch", ranks, epoch_s, "s");
  std::printf("\nshape check: speedup/throughput near-linear; time curves drop fast then "
              "flatten (paper Fig. 5)\n");
  return 0;
}
