// Micro-benchmarks for the kernels the pipeline spends its time in — GEMM,
// LSTM forward/backward, focal loss, ring all-reduce, projection, 2 m
// resampling, h5lite (de)serialization — plus the distributed-training
// substrate's headline numbers.
//
//   ./bench/bench_micro_kernels [BENCH_dist.json]
//
// Self-timed (no external benchmark framework — CI builds with the repo's
// toolchain only). With a path argument a machine-readable summary is
// written for tools/bench_trend.py: the all-reduce GB/s sweep across buffer
// sizes and rank counts, the table-4-style rank sweep of the synchronous
// trainer on a synthetic task (time per epoch, speedup, accuracy) and the
// fig-5-style per-epoch curve points.
//
// Timing note: epoch times come from the trainer's critical-path accounting
// (max over ranks of per-thread busy CPU), so the speedup column reflects
// one-core-per-rank scaling even when this host has fewer cores
// (docs/distributed.md#timing).
//
// Tripwire (exit 1): the 4-rank trainer speedup must stay >= 2.5x — the
// floor that keeps the bucketed-overlap path honest (paper's Table 4 shows
// near-linear scaling at 4 workers).
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "dist/comm.hpp"
#include "dist/trainer.hpp"
#include "geo/polar_stereo.hpp"
#include "h5lite/granule_io.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "resample/segmenter.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace is2;
using is2::util::Rng;
using is2::util::Timer;

volatile float g_sink = 0.0f;  ///< keeps results observable to the optimizer

/// Mean wall milliseconds per call (one warm call first).
template <typename F>
double time_ms(F&& fn, int iters) {
  fn();
  Timer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.millis() / iters;
}

void bench_gemm() {
  std::printf("== gemm_nt (32 x n x n) ==\n");
  for (std::size_t n : {16u, 64u, 112u}) {
    Rng rng(1);
    nn::Mat a(32, n), b(n, n), c(32, n);
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(rng.uniform());
    for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<float>(rng.uniform());
    const double ms = time_ms([&] { nn::gemm_nt(a, b, c); g_sink = c.data()[0]; }, 2000);
    std::printf("  n=%-4zu %8.4f ms  %7.2f GF/s\n", n, ms,
                2.0 * 32 * double(n) * double(n) * 1e-6 / ms);
  }
}

void bench_lstm_fb() {
  Rng rng(2);
  nn::Sequential model = nn::make_lstm_model(5, 6, rng);
  nn::Tensor3 x(32, 5, 6);
  for (auto& v : x.v) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<std::uint8_t> y(32, 1);
  nn::FocalLoss loss(2.0);
  nn::Mat grad;
  const double ms = time_ms(
      [&] {
        const nn::Mat& logits = model.forward(x, true);
        loss.compute(logits, y, grad);
        model.backward(grad);
        g_sink = grad.data()[0];
      },
      200);
  std::printf("lstm forward+backward (batch 32): %.4f ms  (%.0f samples/s)\n", ms,
              32.0 / (ms * 1e-3));
}

void bench_focal_loss() {
  Rng rng(3);
  nn::Mat logits(256, 3);
  for (std::size_t i = 0; i < logits.size(); ++i)
    logits.data()[i] = static_cast<float>(rng.normal(0.0, 2.0));
  std::vector<std::uint8_t> y(256);
  for (auto& v : y) v = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
  nn::FocalLoss loss(2.0);
  nn::Mat grad;
  const double ms =
      time_ms([&] { g_sink = static_cast<float>(loss.compute(logits, y, grad)); }, 2000);
  std::printf("focal loss (batch 256): %.4f ms  (%.0f samples/s)\n", ms, 256.0 / (ms * 1e-3));
}

void bench_projection() {
  const auto proj = geo::PolarStereo::epsg3976();
  Rng rng(4);
  std::vector<geo::LonLat> lls(1024);
  std::vector<geo::Xy> xys(1024);
  for (std::size_t i = 0; i < lls.size(); ++i) {
    lls[i] = {rng.uniform(-180.0, -140.0), rng.uniform(-78.0, -70.0)};
    xys[i] = proj.forward(lls[i]);
  }
  const double fwd_ms = time_ms(
      [&] {
        for (const auto& p : lls) g_sink = static_cast<float>(proj.forward(p).x);
      },
      500);
  const double inv_ms = time_ms(
      [&] {
        for (const auto& p : xys) g_sink = static_cast<float>(proj.inverse(p).lat);
      },
      500);
  std::printf("polar stereo (1024 pts): forward %.4f ms  inverse %.4f ms\n", fwd_ms, inv_ms);
}

struct SimFixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track{geo::PolarStereo::epsg3976().forward({-170.0, -75.0}), 0.4};
  atl03::SurfaceModel surface;
  atl03::Granule granule;
  atl03::PreprocessedBeam pre;

  SimFixture()
      : surface((scfg.length_m = 5'000.0, scfg), track, corrections, 9),
        granule(atl03::PhotonSimulator(atl03::InstrumentConfig{}, 10)
                    .simulate_granule(surface, "BM", 0.0, {atl03::BeamId::Gt2r})),
        pre(atl03::preprocess_beam(granule, granule.beams[0], corrections)) {}
};

void bench_resample_and_h5(const SimFixture& fx) {
  const double res_ms = time_ms([&] { g_sink = resample::resample(fx.pre).empty(); }, 50);
  std::printf("resample 2m (%zu photons): %.3f ms\n", fx.pre.size(), res_ms);

  const auto buf = h5::to_file(fx.granule).serialize();
  const double ser_ms = time_ms([&] { g_sink = h5::to_file(fx.granule).serialize().size(); }, 50);
  const double de_ms =
      time_ms([&] { g_sink = h5::File::deserialize(buf).dataset_count(); }, 50);
  std::printf("granule serialize %.3f ms (%.1f MB/s)  deserialize %.3f ms (%.1f MB/s)\n", ser_ms,
              double(buf.size()) / (ser_ms * 1e3), de_ms, double(buf.size()) / (de_ms * 1e3));
}

/// One point of the all-reduce sweep: aggregate GB/s through an N-rank ring
/// reduction of `n` floats (bytes moved = ranks × 2(N−1)/N × 4n).
struct AllreducePoint {
  int ranks = 0;
  std::size_t floats = 0;
  double ms = 0.0;
  double gbps = 0.0;
};

std::vector<AllreducePoint> bench_allreduce() {
  std::printf("== ring all-reduce (aggregate GB/s) ==\n");
  std::vector<AllreducePoint> points;
  for (int ranks : {2, 4, 8}) {
    for (std::size_t n : {std::size_t{1024}, std::size_t{37'000}, std::size_t{262'144}}) {
      dist::Communicator comm(ranks);
      std::vector<std::vector<float>> bufs(static_cast<std::size_t>(ranks),
                                           std::vector<float>(n, 1.0f));
      const int iters = n > 100'000 ? 20 : 100;
      const double ms = time_ms(
          [&] {
            std::vector<std::thread> threads;
            for (int r = 0; r < ranks; ++r)
              threads.emplace_back(
                  [&, r] { comm.allreduce_mean(r, bufs[static_cast<std::size_t>(r)]); });
            for (auto& t : threads) t.join();
            g_sink = bufs[0][0];
          },
          iters);
      const double bytes = static_cast<double>(dist::Communicator::allreduce_bytes_per_rank(
                               ranks, n)) *
                           ranks;
      AllreducePoint p{ranks, n, ms, bytes / (ms * 1e6)};
      points.push_back(p);
      std::printf("  ranks=%d n=%-7zu %8.4f ms  %6.2f GB/s\n", ranks, n, ms, p.gbps);
    }
  }
  return points;
}

/// One row of the table-4-style rank sweep on the synthetic task.
struct TrainPoint {
  int ranks = 0;
  double time_per_epoch_s = 0.0;
  double speedup = 1.0;
  double accuracy = 0.0;
  std::vector<double> epoch_times_s;
};

nn::Dataset toy_task(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  nn::Dataset d;
  d.x = nn::Tensor3(n, 5, 6);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = d.x.at(i, t);
      for (int f = 0; f < 6; ++f) row[f] = static_cast<float>(rng.normal(cls * 1.0, 0.5));
    }
    d.y[i] = cls;
  }
  return d;
}

std::vector<TrainPoint> bench_dist_training() {
  std::printf("== distributed training rank sweep (LSTM, synthetic task) ==\n");
  const auto train = toy_task(4'096, 7);
  const auto test = toy_task(512, 8);
  std::vector<TrainPoint> points;
  double t1 = 0.0;
  for (int ranks : {1, 2, 4, 8}) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 3;
    const auto result = dist::train_distributed(
        [] {
          Rng rng(9);
          return nn::make_lstm_model(5, 6, rng);
        },
        train, test, cfg);
    TrainPoint p;
    p.ranks = ranks;
    p.time_per_epoch_s = result.time_per_epoch_s;
    p.accuracy = result.test_metrics.accuracy;
    p.epoch_times_s = result.epoch_times_s;
    if (ranks == 1) t1 = result.time_per_epoch_s;
    p.speedup = t1 > 0.0 ? t1 / result.time_per_epoch_s : 1.0;
    points.push_back(p);
    std::printf("  ranks=%d  %.3f s/epoch  %.2fx  acc %.3f\n", ranks, p.time_per_epoch_s,
                p.speedup, p.accuracy);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "";

  bench_gemm();
  bench_lstm_fb();
  bench_focal_loss();
  bench_projection();
  {
    const SimFixture fx;
    bench_resample_and_h5(fx);
  }
  const auto allreduce = bench_allreduce();
  const auto training = bench_dist_training();

  double speedup_4 = 0.0;
  for (const auto& p : training)
    if (p.ranks == 4) speedup_4 = p.speedup;
  // Headline bandwidth: the model-gradient-sized buffer at 4 ranks.
  double allreduce_gbps = 0.0;
  for (const auto& p : allreduce)
    if (p.ranks == 4 && p.floats == 37'000) allreduce_gbps = p.gbps;

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      out << "{\n  \"allreduce\": [\n";
      for (std::size_t i = 0; i < allreduce.size(); ++i) {
        const auto& p = allreduce[i];
        out << "    {\"ranks\": " << p.ranks << ", \"floats\": " << p.floats
            << ", \"ms\": " << p.ms << ", \"gbps\": " << p.gbps << "}"
            << (i + 1 < allreduce.size() ? "," : "") << "\n";
      }
      out << "  ],\n  \"training\": {\n    \"curve\": [\n";
      for (std::size_t i = 0; i < training.size(); ++i) {
        const auto& p = training[i];
        out << "      {\"ranks\": " << p.ranks << ", \"time_per_epoch_s\": " << p.time_per_epoch_s
            << ", \"speedup\": " << p.speedup << ", \"accuracy\": " << p.accuracy
            << ", \"epoch_times_s\": [";
        for (std::size_t e = 0; e < p.epoch_times_s.size(); ++e)
          out << p.epoch_times_s[e] << (e + 1 < p.epoch_times_s.size() ? ", " : "");
        out << "]}" << (i + 1 < training.size() ? "," : "") << "\n";
      }
      out << "    ]\n  },\n  \"dist_speedup_4rank\": " << speedup_4
          << ",\n  \"allreduce_gbps\": " << allreduce_gbps << "\n}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  if (speedup_4 < 2.5) {
    std::fprintf(stderr,
                 "FAIL: 4-rank training speedup %.2fx (need >= 2.5x) — bucketed overlap or "
                 "sharding regressed\n",
                 speedup_4);
    return 1;
  }
  std::printf("4-rank training speedup: %.2fx (>= 2.5x required)\n", speedup_4);
  return 0;
}
