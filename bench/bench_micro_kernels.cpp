// Micro-benchmarks (google-benchmark) for the kernels the pipeline spends
// its time in: GEMM, LSTM step, focal loss, ring all-reduce, projection,
// 2m resampling and h5lite (de)serialization.
#include <benchmark/benchmark.h>

#include <thread>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "dist/comm.hpp"
#include "geo/polar_stereo.hpp"
#include "h5lite/granule_io.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "resample/segmenter.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;

void BM_GemmNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Mat a(32, n), b(n, n), c(32, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(rng.uniform());
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    nn::gemm_nt(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * n * n);
}
BENCHMARK(BM_GemmNt)->Arg(16)->Arg(64)->Arg(112);

void BM_LstmForwardBackward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Sequential model = nn::make_lstm_model(5, 6, rng);
  nn::Tensor3 x(32, 5, 6);
  for (auto& v : x.v) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<std::uint8_t> y(32, 1);
  nn::FocalLoss loss(2.0);
  nn::Mat grad;
  for (auto _ : state) {
    const nn::Mat& logits = model.forward(x, true);
    loss.compute(logits, y, grad);
    model.backward(grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LstmForwardBackward);

void BM_FocalLoss(benchmark::State& state) {
  util::Rng rng(3);
  nn::Mat logits(256, 3);
  for (std::size_t i = 0; i < logits.size(); ++i)
    logits.data()[i] = static_cast<float>(rng.normal(0.0, 2.0));
  std::vector<std::uint8_t> y(256);
  for (auto& v : y) v = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
  nn::FocalLoss loss(2.0);
  nn::Mat grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.compute(logits, y, grad));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FocalLoss);

void BM_RingAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t n = 37'000;  // ~LSTM model gradient size
  for (auto _ : state) {
    dist::Communicator comm(ranks);
    std::vector<std::vector<float>> bufs(ranks, std::vector<float>(n, 1.0f));
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r)
      threads.emplace_back([&, r] { comm.allreduce_mean(r, bufs[static_cast<std::size_t>(r)]); });
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(bufs[0][0]);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              dist::Communicator::allreduce_bytes_per_rank(ranks, n)) *
                          ranks);
}
BENCHMARK(BM_RingAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_PolarStereoForward(benchmark::State& state) {
  const auto proj = geo::PolarStereo::epsg3976();
  util::Rng rng(4);
  std::vector<geo::LonLat> pts(1024);
  for (auto& p : pts) p = {rng.uniform(-180.0, -140.0), rng.uniform(-78.0, -70.0)};
  for (auto _ : state) {
    for (const auto& p : pts) benchmark::DoNotOptimize(proj.forward(p));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PolarStereoForward);

void BM_PolarStereoInverse(benchmark::State& state) {
  const auto proj = geo::PolarStereo::epsg3976();
  util::Rng rng(5);
  std::vector<geo::Xy> pts(1024);
  for (auto& p : pts) {
    const geo::LonLat ll{rng.uniform(-180.0, -140.0), rng.uniform(-78.0, -70.0)};
    p = proj.forward(ll);
  }
  for (auto _ : state) {
    for (const auto& p : pts) benchmark::DoNotOptimize(proj.inverse(p));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_PolarStereoInverse);

struct SimFixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track{geo::PolarStereo::epsg3976().forward({-170.0, -75.0}), 0.4};
  atl03::SurfaceModel surface;
  atl03::Granule granule;
  atl03::PreprocessedBeam pre;

  SimFixture()
      : surface((scfg.length_m = 5'000.0, scfg), track, corrections, 9),
        granule(atl03::PhotonSimulator(atl03::InstrumentConfig{}, 10)
                    .simulate_granule(surface, "BM", 0.0, {atl03::BeamId::Gt2r})),
        pre(atl03::preprocess_beam(granule, granule.beams[0], corrections)) {}
};

void BM_Resample2m(benchmark::State& state) {
  static const SimFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resample::resample(fx.pre));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fx.pre.size()));
}
BENCHMARK(BM_Resample2m);

void BM_GranuleSerialize(benchmark::State& state) {
  static const SimFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h5::to_file(fx.granule).serialize());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(h5::to_file(fx.granule).payload_bytes()));
}
BENCHMARK(BM_GranuleSerialize);

void BM_GranuleDeserialize(benchmark::State& state) {
  static const SimFixture fx;
  const auto buf = h5::to_file(fx.granule).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h5::File::deserialize(buf));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_GranuleDeserialize);

}  // namespace

BENCHMARK_MAIN();
