// NN kernel bench: GEMM / fused-dense throughput at the classifier's real
// shapes, against the retained reference kernels, plus end-to-end
// windows/sec through Model::predict on the paper's LSTM architecture.
//
//   ./bench/bench_nn_kernels [BENCH_nn.json]
//
// With a path argument, a machine-readable summary is written there so CI
// can trend kernel throughput across PRs (tools/bench_trend.py).
//
// Tripwire (exit 1): the aggregate forward-kernel speedup over the
// reference kernels at the classifier shapes must stay >= 3x — the floor
// the tiled/vectorized kernels were introduced to clear. Aggregate =
// total reference time / total fast time over all forward shapes, i.e.
// weighted by where the model actually spends its time.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace is2::nn;
using is2::util::Rng;
using is2::util::Timer;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng) {
  Mat m(r, c);
  for (auto& v : m.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return m;
}

/// One forward-kernel shape: y = act(x W^T + b) with x:[m,k], w:[n,k].
struct Shape {
  const char* name;
  std::size_t m, n, k;
  Activation act;
};

struct ShapeResult {
  const char* name = "";
  std::size_t m = 0, n = 0, k = 0;
  double fast_ms = 0, ref_ms = 0;
  double gflops() const { return 2.0 * double(m) * double(n) * double(k) * 1e-6 / fast_ms; }
  double ref_gflops() const { return 2.0 * double(m) * double(n) * double(k) * 1e-6 / ref_ms; }
  double speedup() const { return ref_ms > 0 ? ref_ms / fast_ms : 0.0; }
};

/// Median-of-repeats wall time for one call.
template <typename F>
double time_ms(F&& fn, int iters) {
  fn();  // warm
  Timer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.millis() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "";
  Rng rng(17);

  // The classifier's forward shapes at the serve batch size (256 windows):
  // the LSTM's per-timestep input / recurrent GEMMs, then the dense stack
  // 16-32-96-32-16-112-48-64-3 (ELU except the logits head).
  const std::size_t B = 256;
  const std::vector<Shape> shapes = {
      {"lstm_wx", B, 64, 6, Activation::Linear},
      {"lstm_wh", B, 64, 16, Activation::Linear},
      {"dense_16_32", B, 32, 16, Activation::Elu},
      {"dense_32_96", B, 96, 32, Activation::Elu},
      {"dense_96_32", B, 32, 96, Activation::Elu},
      {"dense_32_16", B, 16, 32, Activation::Elu},
      {"dense_16_112", B, 112, 16, Activation::Elu},
      {"dense_112_48", B, 48, 112, Activation::Elu},
      {"dense_48_64", B, 64, 48, Activation::Elu},
      {"logits_64_3", B, 3, 64, Activation::Linear},
  };

  std::printf("== forward kernels at classifier shapes (batch %zu) ==\n", B);
  std::printf("%-14s %5s %5s %5s  %10s %10s %9s %9s %8s\n", "shape", "m", "n", "k", "fast ms",
              "ref ms", "fast GF/s", "ref GF/s", "speedup");

  std::vector<ShapeResult> results;
  double fast_total = 0.0, ref_total = 0.0;
  for (const Shape& s : shapes) {
    const Mat x = random_mat(s.m, s.k, rng);
    const Mat w = random_mat(s.n, s.k, rng);
    const Mat b = random_mat(1, s.n, rng);
    Mat y, z, ref_out(s.m, s.n);
    const int iters = 300;

    // Production path: fused bias+activation dense forward.
    const double fast_ms =
        time_ms([&] { dense_forward_fused(x, w, b, s.act, y); }, iters);
    // Reference path: scalar GEMM + bias pass + activation pass (what
    // Dense::forward did before the rewrite).
    const double ref_ms = time_ms(
        [&] {
          gemm_nt_reference(x, w, ref_out, false);
          for (std::size_t r = 0; r < s.m; ++r) {
            float* row = ref_out.row(r);
            for (std::size_t c = 0; c < s.n; ++c) row[c] += b.at(0, c);
            for (std::size_t c = 0; c < s.n; ++c) row[c] = activate(s.act, row[c]);
          }
        },
        iters);

    ShapeResult r{s.name, s.m, s.n, s.k, fast_ms, ref_ms};
    results.push_back(r);
    fast_total += fast_ms;
    ref_total += ref_ms;
    std::printf("%-14s %5zu %5zu %5zu  %10.4f %10.4f %9.1f %9.1f %7.1fx\n", s.name, s.m, s.n,
                s.k, fast_ms, ref_ms, r.gflops(), r.ref_gflops(), r.speedup());
  }
  const double aggregate = ref_total / fast_total;
  std::printf("aggregate (total ref / total fast): %.2fx\n\n", aggregate);

  // Raw gemm_nt at a bigger square-ish shape (the threshold-parallel path's
  // home turf) for the trend line.
  double gemm_nt_big_ms = 0, gemm_nt_big_ref_ms = 0;
  {
    const Mat a = random_mat(512, 256, rng);
    const Mat bm = random_mat(384, 256, rng);
    Mat c(512, 384);
    gemm_nt_big_ms = time_ms([&] { gemm_nt(a, bm, c); }, 50);
    gemm_nt_big_ref_ms = time_ms([&] { gemm_nt_reference(a, bm, c); }, 50);
    std::printf("gemm_nt 512x384x256: fast %.3f ms (%.1f GF/s)  ref %.3f ms  %.1fx\n",
                gemm_nt_big_ms, 2.0 * 512 * 384 * 256 * 1e-6 / gemm_nt_big_ms,
                gemm_nt_big_ref_ms, gemm_nt_big_ref_ms / gemm_nt_big_ms);
  }

  // End-to-end: windows/sec through Model::predict on the paper's LSTM
  // (what the serve inference stage runs per granule).
  const std::size_t kWindow = 5, kDim = 6, kWindows = 7400;
  Rng mrng(99);
  Sequential model = make_lstm_model(kWindow, kDim, mrng);
  Tensor3 x(kWindows, kWindow, kDim);
  Rng xr(1);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  model.predict(x, 256);  // warm
  const int passes = 10;
  Timer t;
  for (int i = 0; i < passes; ++i) model.predict(x, 256);
  const double predict_ms = t.millis() / passes;
  const double windows_per_sec = kWindows / (predict_ms * 1e-3);
  std::printf("Model::predict (LSTM, %zu windows, batch 256): %.2f ms  (%.0f windows/sec)\n",
              kWindows, predict_ms, windows_per_sec);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      out << "{\n  \"batch\": " << B << ",\n  \"shapes\": [\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const ShapeResult& r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"m\": " << r.m << ", \"n\": " << r.n
            << ", \"k\": " << r.k << ", \"fast_ms\": " << r.fast_ms
            << ", \"ref_ms\": " << r.ref_ms << ", \"fast_gflops\": " << r.gflops()
            << ", \"speedup\": " << r.speedup() << "}" << (i + 1 < results.size() ? "," : "")
            << "\n";
      }
      out << "  ],\n  \"aggregate_speedup\": " << aggregate
          << ",\n  \"gemm_nt_big_ms\": " << gemm_nt_big_ms
          << ",\n  \"gemm_nt_big_speedup\": " << gemm_nt_big_ref_ms / gemm_nt_big_ms
          << ",\n  \"predict_ms\": " << predict_ms
          << ",\n  \"predict_windows_per_sec\": " << windows_per_sec << "\n}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  // Tripwire: the kernel rewrite must keep paying for itself.
  if (aggregate < 3.0) {
    std::fprintf(stderr,
                 "FAIL: forward kernels only %.2fx faster than the reference kernels "
                 "(need >= 3x)\n",
                 aggregate);
    return 1;
  }
  std::printf("forward kernels: %.1fx faster than reference (>= 3x required)\n", aggregate);
  return 0;
}
