// Serving throughput bench: QPS and p50/p99 latency of the GranuleService
// under cold (every request builds) and warm (every request hits the LRU
// product cache) traffic, across worker counts, plus a cache-size sweep
// under repeat traffic with evictions, a cache-tier sweep (full rebuild vs
// warm-disk cold start vs warm-RAM), a priority-mix run under a saturated
// queue (per-class sheds + latency), and the cluster SLO sweep: a 3-node
// `serve::Cluster` under the open-loop Poisson/Zipf/burst load generator
// (bench/loadgen.hpp), sweeping offered QPS for the p99-vs-offered and
// per-class shed-rate curves.
//
//   ./bench/bench_serve_throughput [BENCH_serve.json]
//
// With a path argument, a machine-readable summary (per-worker QPS/latency,
// per-stage cold-build means, queue-wait vs service-time p99 split, cache
// sweep, cache-tier sweep, priority mix, cluster SLO curve) is written
// there so CI can accumulate the perf trajectory as build artifacts — plus,
// next to it, the service's obs snapshot as Prometheus text exposition
// (`<stem>.prom`), the cluster's node-labeled merged snapshot
// (`<stem>.cluster.prom`; both linted by tools/check_prometheus.py) and the
// span ring as a Perfetto-loadable trace (`<stem>.trace.json`).
//
// Tripwires (exit 1):
//  * the warm-disk cold start must be >= 5x faster than a full rebuild on
//    the tiny scenario — the reason the disk tier exists;
//  * full-rate tracing must not slow the warm RAM-hit path by more than 2%
//    (plus a small absolute floor) over sampling disabled — the obs layer's
//    hot-path budget;
//  * the cluster run must record at least one peer fetch — the router's
//    reason to probe replica RAM tiers before paying shard IO + inference;
//  * the chaos run (same fleet shape, seeded disk-fault storm + one
//    mid-sweep node quarantine/revive) must keep availability — the served
//    fraction of offered requests — at >= 99%: the point of the retry /
//    failover / self-healing layer.
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "loadgen.hpp"
#include "obs/export.hpp"
#include "serve/cluster.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using bench::TrafficResult;

/// Closed-loop driver (bench/loadgen.cpp) — capacity and per-request
/// latency; the open-loop SLO sweep is the cluster section below.
TrafficResult drive(serve::GranuleService& service,
                    const std::vector<serve::ProductRequest>& requests, std::size_t clients) {
  return bench::drive_closed_loop(service, requests, clients);
}

struct WorkerRow {
  std::size_t workers = 0;
  double cold_qps = 0, cold_p50 = 0, cold_p99 = 0;
  double warm_qps = 0, warm_p50 = 0, warm_p99 = 0;
  serve::ServiceMetrics metrics;
};

struct SweepRow {
  double scale = 0;
  double qps = 0, hit_rate = 0;
  std::uint64_t evictions = 0, builds = 0;
};

/// One pass of the cache-tier sweep: the same request universe served by a
/// full rebuild, a warm-disk cold start (fresh service, populated disk
/// directory, empty RAM tier) and a warm RAM tier.
struct TierSweep {
  double rebuild_mean_ms = 0, rebuild_p99_ms = 0;
  double warm_disk_mean_ms = 0, warm_disk_p99_ms = 0;
  double warm_ram_mean_ms = 0, warm_ram_p99_ms = 0;
  std::uint64_t disk_hits = 0, disk_bytes = 0;

  double disk_speedup() const {
    return warm_disk_mean_ms > 0 ? rebuild_mean_ms / warm_disk_mean_ms : 0.0;
  }
};

struct ClassRow {
  std::uint64_t requests = 0, shed = 0;
  double mean_ms = 0, max_ms = 0;
};

/// Warm RAM-hit mean latency with tracing at full sample rate vs disabled
/// (min of `kTrials` passes each, so scheduler noise cancels).
struct TraceOverhead {
  static constexpr int kTrials = 3;
  double traced_mean_ms = 0, untraced_mean_ms = 0;

  double ratio() const {
    return untraced_mean_ms > 0 ? traced_mean_ms / untraced_mean_ms : 0.0;
  }
  /// <2% relative plus a 5 us absolute floor (tiny means divide noisily).
  bool ok() const { return traced_mean_ms <= untraced_mean_ms * 1.02 + 0.005; }
};

/// The cluster SLO sweep: one open-loop run per offered-QPS point against a
/// reused 3-node fleet (state carries across points — the realistic warm-up
/// trajectory), plus the router counters after the sweep.
struct ClusterSection {
  serve::ClusterConfig config;
  std::vector<bench::LoadgenResult> curve;  ///< one row per offered point
  serve::ClusterMetrics metrics;

  /// Headline numbers tools/bench_trend.py trends: the highest offered
  /// point's p99 and total shed rate.
  double p99_ms() const { return curve.empty() ? 0.0 : curve.back().p99(); }
  double shed_rate() const { return curve.empty() ? 0.0 : curve.back().shed_rate(); }
};

/// The chaos run: the open-loop sweep repeated against a warmed fleet with
/// an armed fault plan (probabilistic disk.read/disk.write failures) and one
/// explicit quarantine + revive mid-sweep. The headline is availability —
/// served / offered — which the retry, failover and re-replication layers
/// must keep at >= 99% despite the injected faults.
struct ChaosSection {
  double disk_fault_rate = 0.0;
  std::vector<bench::LoadgenResult> curve;
  serve::ClusterMetrics metrics;
  std::uint64_t injected_disk_read = 0;   ///< disk.read faults actually fired
  std::uint64_t injected_disk_write = 0;  ///< disk.write faults actually fired

  std::uint64_t offered() const {
    std::uint64_t n = 0;
    for (const auto& r : curve) n += r.offered;
    return n;
  }
  std::uint64_t served() const {
    std::uint64_t n = 0;
    for (const auto& r : curve) n += r.served;
    return n;
  }
  double availability() const {
    const std::uint64_t o = offered();
    return o ? static_cast<double>(served()) / static_cast<double>(o) : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<WorkerRow>& rows,
                const std::vector<SweepRow>& sweep, const TierSweep& tiers,
                const std::array<ClassRow, serve::kPriorityClasses>& classes,
                const TraceOverhead& overhead, const ClusterSection& cluster,
                const ChaosSection& chaos) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto stage = [&](const char* name, const serve::StageLatency& s, bool last = false) {
    out << "      \"" << name << "\": {\"count\": " << s.stats.count()
        << ", \"mean_ms\": " << s.stats.mean() << ", \"max_ms\": " << s.stats.max() << "}"
        << (last ? "\n" : ",\n");
  };
  // The queue-wait vs service-time split of the highest worker-count run
  // (scheduled jobs only) — the two columns tools/bench_trend.py trends.
  const serve::StageLatency& qw = rows.back().metrics.queue_wait;
  const serve::StageLatency& st = rows.back().metrics.service_time;
  out << "{\n  \"scenario\": \"tiny\",\n"
      << "  \"queue_wait_p99_ms\": " << qw.p99_ms()
      << ", \"queue_wait_mean_ms\": " << qw.stats.mean() << ",\n"
      << "  \"service_time_p99_ms\": " << st.p99_ms()
      << ", \"service_time_mean_ms\": " << st.stats.mean() << ",\n"
      << "  \"warm_hit_overhead\": {\"traced_mean_ms\": " << overhead.traced_mean_ms
      << ", \"untraced_mean_ms\": " << overhead.untraced_mean_ms
      << ", \"ratio\": " << overhead.ratio() << "},\n"
      << "  \"workers\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WorkerRow& r = rows[i];
    out << "    {\"workers\": " << r.workers << ", \"cold_qps\": " << r.cold_qps
        << ", \"cold_p50_ms\": " << r.cold_p50 << ", \"cold_p99_ms\": " << r.cold_p99
        << ", \"warm_qps\": " << r.warm_qps << ", \"warm_p50_ms\": " << r.warm_p50
        << ", \"warm_p99_ms\": " << r.warm_p99 << ",\n     \"stages\": {\n";
    stage("load", r.metrics.load);
    stage("features", r.metrics.features);
    stage("inference", r.metrics.inference);
    stage("seasurface", r.metrics.seasurface);
    stage("freeboard", r.metrics.freeboard);
    stage("total", r.metrics.total, /*last=*/true);
    out << "    }}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  // Raw per-stage ProductBuilder timings (the seven stage-graph stages) from
  // the highest worker-count run — what tools/bench_trend.py trends.
  out << "  ],\n  \"builder_stages\": {\n";
  if (!rows.empty()) {
    const auto& builder = rows.back().metrics.builder;
    for (std::size_t s = 0; s < is2::pipeline::kNumStages; ++s) {
      const auto& lat = builder[s];
      out << "    \"" << is2::pipeline::stage_name(static_cast<is2::pipeline::StageId>(s))
          << "\": {\"count\": " << lat.stats.count() << ", \"mean_ms\": " << lat.stats.mean()
          << ", \"max_ms\": " << lat.stats.max() << "}"
          << (s + 1 < is2::pipeline::kNumStages ? "," : "") << "\n";
    }
  }
  out << "  },\n  \"cache_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    out << "    {\"budget_products\": " << r.scale << ", \"qps\": " << r.qps
        << ", \"hit_rate\": " << r.hit_rate << ", \"evictions\": " << r.evictions
        << ", \"builds\": " << r.builds << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"cluster\": {\n"
      << "    \"nodes\": " << cluster.config.nodes
      << ", \"replication_factor\": " << cluster.config.replication_factor
      << ", \"vnodes\": " << cluster.config.vnodes
      << ", \"hot_key_threshold\": " << cluster.config.hot_key_threshold << ",\n"
      << "    \"slo_curve\": [\n";
  for (std::size_t i = 0; i < cluster.curve.size(); ++i) {
    const bench::LoadgenResult& r = cluster.curve[i];
    out << "      {\"offered_qps\": " << r.offered_qps
        << ", \"achieved_qps\": " << r.achieved_qps << ", \"offered\": " << r.offered
        << ", \"served\": " << r.served << ",\n       \"p50_ms\": " << r.p50()
        << ", \"p99_ms\": " << r.p99() << ", \"mean_ms\": " << r.mean()
        << ", \"shed_rate\": " << r.shed_rate() << ",\n       \"by_class\": {";
    for (std::size_t c = 0; c < serve::kPriorityClasses; ++c) {
      const bench::ClassOutcome& cls = r.by_class[c];
      out << "\"" << serve::priority_name(static_cast<serve::Priority>(c))
          << "\": {\"offered\": " << cls.offered << ", \"served\": " << cls.served
          << ", \"shed\": " << cls.shed() << ", \"shed_rate\": " << cls.shed_rate() << "}"
          << (c + 1 < serve::kPriorityClasses ? ", " : "");
    }
    out << "}}" << (i + 1 < cluster.curve.size() ? "," : "") << "\n";
  }
  out << "    ],\n"
      << "    \"peer_probes\": " << cluster.metrics.peer_probes
      << ", \"peer_fetches\": " << cluster.metrics.peer_fetches
      << ", \"replica_routes\": " << cluster.metrics.replica_routes
      << ", \"hot_keys\": " << cluster.metrics.hot_keys << ",\n"
      << "    \"imbalance\": " << cluster.metrics.imbalance()
      << ", \"cluster_p99_ms\": " << cluster.p99_ms()
      << ", \"cluster_shed_rate\": " << cluster.shed_rate() << "\n  },\n"
      << "  \"chaos\": {\n"
      << "    \"disk_fault_rate\": " << chaos.disk_fault_rate
      << ", \"offered\": " << chaos.offered() << ", \"served\": " << chaos.served()
      << ", \"availability\": " << chaos.availability() << ",\n"
      << "    \"injected_disk_read\": " << chaos.injected_disk_read
      << ", \"injected_disk_write\": " << chaos.injected_disk_write << ",\n"
      << "    \"node_failures\": " << chaos.metrics.node_failures
      << ", \"quarantines\": " << chaos.metrics.quarantines
      << ", \"revives\": " << chaos.metrics.revives
      << ", \"rereplicated_keys\": " << chaos.metrics.rereplicated_keys << ",\n"
      << "    \"disk_read_retries\": " << chaos.metrics.shared_disk.disk_read_retries
      << ", \"corrupt_dropped\": " << chaos.metrics.shared_disk.corrupt_dropped << "\n  },\n"
      << "  \"cache_tiers\": {\n"
      << "    \"rebuild_mean_ms\": " << tiers.rebuild_mean_ms
      << ", \"rebuild_p99_ms\": " << tiers.rebuild_p99_ms << ",\n"
      << "    \"warm_disk_mean_ms\": " << tiers.warm_disk_mean_ms
      << ", \"warm_disk_p99_ms\": " << tiers.warm_disk_p99_ms << ",\n"
      << "    \"warm_ram_mean_ms\": " << tiers.warm_ram_mean_ms
      << ", \"warm_ram_p99_ms\": " << tiers.warm_ram_p99_ms << ",\n"
      << "    \"disk_hits\": " << tiers.disk_hits
      << ", \"disk_bytes\": " << tiers.disk_bytes
      << ", \"disk_speedup\": " << tiers.disk_speedup() << "\n  },\n"
      << "  \"priority_mix\": {\n";
  for (std::size_t c = 0; c < serve::kPriorityClasses; ++c) {
    const ClassRow& r = classes[c];
    out << "    \"" << serve::priority_name(static_cast<serve::Priority>(c))
        << "\": {\"requests\": " << r.requests << ", \"shed\": " << r.shed
        << ", \"mean_ms\": " << r.mean_ms << ", \"max_ms\": " << r.max_ms << "}"
        << (c + 1 < serve::kPriorityClasses ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "";
  const core::PipelineConfig config = core::PipelineConfig::tiny();
  const core::Campaign campaign(config);

  std::printf("== generating campaign pair 2 (tiny scale) ==\n");
  const core::PairDataset pair = campaign.generate(1);

  const std::string dir =
      (std::filesystem::temp_directory_path() / ("is2_serve_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  core::ShardSet shards;
  core::write_shards(pair.granule, 0, /*chunks_per_beam=*/2, dir, shards);
  const serve::ShardIndex index = serve::ShardIndex::build(shards.files);

  // Scaler fit on the first beam's features (as the batch pipeline would).
  const auto merged = serve::ShardIndex::load_merged(*index.find(pair.granule.id, BeamId::Gt1r));
  const auto pre = atl03::preprocess_beam(merged, merged.beams[0], campaign.corrections(),
                                          config.preprocess);
  auto segs = resample::resample(pre, config.segmenter);
  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);
  fpb.apply(segs);
  const resample::FeatureScaler scaler =
      resample::FeatureScaler::fit(resample::to_features(segs, resample::rolling_baseline(segs)));

  const auto model_factory = [&config] {
    util::Rng rng(99);
    return nn::make_lstm_model(config.sequence_window, resample::FeatureRow::kDim, rng);
  };

  // The request universe: every strong beam x every sea surface method.
  std::vector<serve::ProductRequest> universe;
  for (const BeamId beam : {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r})
    for (const auto method :
         {seasurface::Method::NasaEquation, seasurface::Method::MinElevation,
          seasurface::Method::AverageElevation, seasurface::Method::NearestMinElevation}) {
      serve::ProductRequest r;
      r.granule_id = pair.granule.id;
      r.beam = beam;
      r.method = method;
      universe.push_back(r);
    }

  const std::size_t warm_requests = 500;
  util::Rng traffic_rng(7);
  std::vector<serve::ProductRequest> warm_traffic;
  warm_traffic.reserve(warm_requests);
  for (std::size_t i = 0; i < warm_requests; ++i)
    warm_traffic.push_back(universe[traffic_rng.next() % universe.size()]);

  std::string prom_text;      // obs snapshot of the last worker run
  std::string perfetto_text;  // its span ring, Perfetto trace_event JSON
  util::Table table("GranuleService throughput (tiny campaign, " +
                    std::to_string(universe.size()) + " distinct products)");
  table.set_header({"workers", "cold QPS", "cold p50 ms", "cold p99 ms", "warm QPS",
                    "warm p50 ms", "warm p99 ms", "speedup"});

  std::vector<WorkerRow> worker_rows;
  std::vector<SweepRow> sweep_rows;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    serve::ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue_capacity = 64;
    cfg.cache_bytes = 512u << 20;  // everything fits: warm pass is all hits
    serve::GranuleService service(cfg, config, campaign.corrections(), index, model_factory,
                                  scaler);

    const TrafficResult cold = drive(service, universe, workers);
    const TrafficResult warm = drive(service, warm_traffic, workers > 1 ? workers * 2 : 2);
    const double speedup = warm.qps() / (cold.qps() > 0 ? cold.qps() : 1e-9);

    table.add_row({std::to_string(workers), std::to_string(cold.qps()).substr(0, 7),
                   std::to_string(cold.p50()).substr(0, 7),
                   std::to_string(cold.p99()).substr(0, 7),
                   std::to_string(warm.qps()).substr(0, 9),
                   std::to_string(warm.p50()).substr(0, 7),
                   std::to_string(warm.p99()).substr(0, 7),
                   std::to_string(speedup).substr(0, 8) + "x"});

    const auto m = service.metrics();
    worker_rows.push_back(WorkerRow{workers, cold.qps(), cold.p50(), cold.p99(), warm.qps(),
                                    warm.p50(), warm.p99(), m});
    // Keep the last (widest) run's exposition + trace for the CI artifacts.
    prom_text = obs::to_prometheus(service.obs_snapshot());
    perfetto_text = obs::to_perfetto(service.trace_spans(), obs::thread_labels());
    std::printf(
        "workers=%zu  dispatched=%llu coalesced=%llu fast_hits=%llu  cache: %llu hits / %llu "
        "misses, %zu entries, %.1f MiB  inference: %llu windows in %llu batches\n",
        workers, static_cast<unsigned long long>(m.scheduler.dispatched),
        static_cast<unsigned long long>(m.scheduler.coalesced),
        static_cast<unsigned long long>(m.fast_hits),
        static_cast<unsigned long long>(m.cache.hits),
        static_cast<unsigned long long>(m.cache.misses), m.cache.entries,
        static_cast<double>(m.cache.bytes) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(m.inference_windows),
        static_cast<unsigned long long>(m.inference_batches));
  }
  std::printf("\n%s\n", table.to_string().c_str());
  {
    const auto& m = worker_rows.back().metrics;
    std::printf("scheduled-job split (workers=%zu): queue_wait p50 %.3f / p99 %.3f ms, "
                "service_time p50 %.3f / p99 %.3f ms\n\n",
                worker_rows.back().workers, m.queue_wait.p50_ms(), m.queue_wait.p99_ms(),
                m.service_time.p50_ms(), m.service_time.p99_ms());
  }

  // Cache-size sweep: repeat traffic with a budget too small for the working
  // set keeps rebuilding; a full-size budget serves it entirely from memory.
  std::printf("== cache-size sweep (2 workers, %zu repeat requests) ==\n", warm_requests / 4);
  util::Table sweep("Cache size vs hit rate");
  sweep.set_header({"cache budget", "QPS", "hit rate", "evictions", "builds"});
  std::size_t one_product_bytes = 0;
  for (const double scale : {0.4, 2.0, 100.0}) {
    serve::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.cache_shards = 1;
    if (one_product_bytes == 0) {
      // Probe one build to size the budget in product units.
      serve::GranuleService probe(cfg, config, campaign.corrections(), index, model_factory,
                                  scaler);
      one_product_bytes = probe.submit(universe[0]).get().product->approx_bytes();
    }
    cfg.cache_bytes = static_cast<std::size_t>(static_cast<double>(one_product_bytes) * scale);
    serve::GranuleService service(cfg, config, campaign.corrections(), index, model_factory,
                                  scaler);
    std::vector<serve::ProductRequest> repeat(warm_traffic.begin(),
                                              warm_traffic.begin() + warm_requests / 4);
    const TrafficResult r = drive(service, repeat, 2);
    const auto m = service.metrics();
    sweep_rows.push_back(
        SweepRow{scale, r.qps(), m.cache.hit_rate(), m.cache.evictions, m.scheduler.dispatched});
    sweep.add_row({std::to_string(scale).substr(0, 5) + " products",
                   std::to_string(r.qps()).substr(0, 8),
                   std::to_string(m.cache.hit_rate()).substr(0, 5),
                   std::to_string(m.cache.evictions),
                   std::to_string(m.scheduler.dispatched)});
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // Cache-tier sweep: the same 12-product universe served three ways. The
  // first service populates the disk tier while building cold; a fresh
  // service over the same directory then cold-starts from disk (RAM empty);
  // repeats hit RAM. This is the restart / eviction recovery path the disk
  // tier exists for.
  std::printf("== cache-tier sweep (2 workers, %zu distinct products) ==\n", universe.size());
  TierSweep tiers;
  const std::string disk_dir = dir + "/disk_tier";
  {
    serve::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.cache_bytes = 512u << 20;
    cfg.disk_cache_dir = disk_dir;
    {
      serve::GranuleService rebuild_svc(cfg, config, campaign.corrections(), index,
                                        model_factory, scaler);
      const TrafficResult rebuild = drive(rebuild_svc, universe, 2);
      tiers.rebuild_mean_ms = rebuild.mean();
      tiers.rebuild_p99_ms = rebuild.p99();
      rebuild_svc.wait_disk_writebacks();  // every product lands on disk
    }
    serve::GranuleService warm_svc(cfg, config, campaign.corrections(), index, model_factory,
                                   scaler);
    const TrafficResult warm_disk = drive(warm_svc, universe, 2);
    tiers.warm_disk_mean_ms = warm_disk.mean();
    tiers.warm_disk_p99_ms = warm_disk.p99();
    const TrafficResult warm_ram = drive(warm_svc, universe, 2);
    tiers.warm_ram_mean_ms = warm_ram.mean();
    tiers.warm_ram_p99_ms = warm_ram.p99();
    const auto m = warm_svc.metrics();
    tiers.disk_hits = m.disk.hits;
    tiers.disk_bytes = m.disk.bytes;
  }
  util::Table tier_table("Cache tiers: mean / p99 per-request latency");
  tier_table.set_header({"tier", "mean ms", "p99 ms", "vs rebuild"});
  tier_table.add_row({"full rebuild", std::to_string(tiers.rebuild_mean_ms).substr(0, 7),
                      std::to_string(tiers.rebuild_p99_ms).substr(0, 7), "1x"});
  tier_table.add_row({"warm disk (cold start)",
                      std::to_string(tiers.warm_disk_mean_ms).substr(0, 7),
                      std::to_string(tiers.warm_disk_p99_ms).substr(0, 7),
                      std::to_string(tiers.disk_speedup()).substr(0, 7) + "x"});
  tier_table.add_row({"warm RAM", std::to_string(tiers.warm_ram_mean_ms).substr(0, 7),
                      std::to_string(tiers.warm_ram_p99_ms).substr(0, 7),
                      std::to_string(tiers.warm_ram_mean_ms > 0
                                         ? tiers.rebuild_mean_ms / tiers.warm_ram_mean_ms
                                         : 0.0)
                              .substr(0, 7) +
                          "x"});
  std::printf("%s\n", tier_table.to_string().c_str());

  // Priority mix under saturation: one worker, a tiny queue, load-shedding
  // submits from four clients with a 20/30/50 interactive/batch/background
  // mix. Background must absorb most of the shedding; interactive latency
  // stays bounded by the weighted dequeue.
  std::printf("== priority mix (1 worker, queue=4, 200 try_submits) ==\n");
  std::array<ClassRow, serve::kPriorityClasses> class_rows{};
  {
    serve::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 4;
    cfg.cache_bytes = 1;  // ~no RAM tier: every distinct key keeps rebuilding
    cfg.cache_shards = 1;
    serve::GranuleService service(cfg, config, campaign.corrections(), index, model_factory,
                                  scaler);
    // Fire-and-forget so the queue actually saturates (a client that waits
    // for each response self-throttles to the build rate and nothing sheds).
    std::vector<std::vector<serve::ProductFuture>> futures(4);
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        util::Rng rng(42 + c);
        for (int i = 0; i < 50; ++i) {
          serve::ProductRequest r = universe[rng.next() % universe.size()];
          const double u = rng.uniform();
          r.priority = u < 0.2   ? serve::Priority::interactive
                       : u < 0.5 ? serve::Priority::batch
                                 : serve::Priority::background;
          if (auto f = service.try_submit(r)) futures[static_cast<std::size_t>(c)].push_back(*f);
        }
      });
    }
    for (auto& t : clients) t.join();
    std::size_t displaced_waits = 0;
    for (auto& v : futures)
      for (auto& f : v) {
        try {
          (void)f.get();
        } catch (const serve::ShedError&) {
          ++displaced_waits;  // queued job displaced by a higher class
        }
      }
    std::printf("futures that saw ShedError: %zu\n", displaced_waits);
    const auto m = service.metrics();
    util::Table prio("Priority classes under saturation");
    prio.set_header({"class", "requests", "shed", "mean ms", "max ms"});
    for (std::size_t c = 0; c < serve::kPriorityClasses; ++c) {
      class_rows[c].requests = m.by_class[c].requests;
      class_rows[c].shed = m.scheduler.shed_by_class[c];
      class_rows[c].mean_ms = m.by_class[c].latency.stats.mean();
      class_rows[c].max_ms = m.by_class[c].latency.stats.max();
      prio.add_row({serve::priority_name(static_cast<serve::Priority>(c)),
                    std::to_string(class_rows[c].requests), std::to_string(class_rows[c].shed),
                    std::to_string(class_rows[c].mean_ms).substr(0, 7),
                    std::to_string(class_rows[c].max_ms).substr(0, 7)});
    }
    std::printf("%s\n", prio.to_string().c_str());
  }

  // Cluster SLO sweep: a 3-node fleet (shared disk tier, hot-key
  // replication) under the open-loop Poisson/Zipf/burst loadgen, sweeping
  // offered QPS against one reused cluster. Node caches are deliberately
  // small (4 products) so the Zipf tail keeps rebuilding and the queues
  // actually saturate at the high offered points — that is where the
  // shed-rate curve comes from.
  std::printf("== cluster SLO sweep (3 nodes x 1 worker, open-loop Poisson/Zipf) ==\n");
  ClusterSection cluster_section;
  std::string cluster_prom_text;
  {
    serve::ClusterConfig ccfg;
    ccfg.nodes = 3;
    ccfg.vnodes = 128;
    ccfg.replication_factor = 2;
    ccfg.hot_key_threshold = 4;
    ccfg.shared_disk_dir = dir + "/cluster_disk";
    ccfg.node.workers = 1;
    ccfg.node.queue_capacity = 4;
    ccfg.node.cache_bytes = one_product_bytes * 2;
    ccfg.node.cache_shards = 1;
    cluster_section.config = ccfg;
    serve::Cluster cluster(ccfg, config, campaign.corrections(), index, model_factory, scaler);

    // Deterministic peer-fetch demonstration before the stochastic sweep:
    // sequential submits of the Zipf head cross hot_key_threshold, then
    // round-robin over the replica set — the first off-owner route misses
    // its RAM tier and fetches the resident product from the owner.
    for (std::uint64_t i = 0; i < ccfg.hot_key_threshold * 2; ++i)
      (void)cluster.submit(universe[0]).get();

    bench::LoadgenConfig lg;
    lg.duration_s = 1.0;
    lg.zipf_s = 1.1;
    lg.burst_factor = 4.0;
    lg.burst_every_s = 0.5;
    lg.burst_len_s = 0.1;
    lg.clients = 3;
    const auto submit = [&cluster](const serve::ProductRequest& r,
                                   std::optional<serve::Priority>* shed) {
      return cluster.try_submit(r, shed);
    };
    util::Table slo("Cluster SLO curve (open loop, Zipf s=1.1, 4x bursts)");
    slo.set_header({"offered QPS", "achieved", "p50 ms", "p99 ms", "shed rate", "imbalance"});
    for (const double offered : {100.0, 800.0, 6400.0}) {
      lg.offered_qps = offered;
      lg.seed = 11 + static_cast<std::uint64_t>(offered);
      const bench::LoadgenResult r = bench::run_open_loop(lg, universe, submit);
      cluster_section.curve.push_back(r);
      slo.add_row({std::to_string(r.offered_qps).substr(0, 7),
                   std::to_string(r.achieved_qps).substr(0, 7),
                   std::to_string(r.p50()).substr(0, 7), std::to_string(r.p99()).substr(0, 7),
                   std::to_string(r.shed_rate()).substr(0, 5),
                   std::to_string(cluster.metrics().imbalance()).substr(0, 5)});
    }
    cluster_section.metrics = cluster.metrics();
    std::printf("%s\n", slo.to_string().c_str());
    std::printf(
        "router: %llu routed, %llu peer probes -> %llu peer fetches, %llu hot keys, "
        "%llu replica routes, imbalance %.3f\n\n",
        static_cast<unsigned long long>(cluster_section.metrics.requests),
        static_cast<unsigned long long>(cluster_section.metrics.peer_probes),
        static_cast<unsigned long long>(cluster_section.metrics.peer_fetches),
        static_cast<unsigned long long>(cluster_section.metrics.hot_keys),
        static_cast<unsigned long long>(cluster_section.metrics.replica_routes),
        cluster_section.metrics.imbalance());
    // Node-labeled fleet exposition for the CI lint (check_prometheus.py
    // --require-node-label), captured before the nodes drain.
    cluster_prom_text = obs::to_prometheus(cluster.obs_snapshot());
    cluster.shutdown();
  }

  // Chaos run: the same fleet shape, warmed, then swept under an armed
  // fault plan — every disk read/write fails with 3% probability (seeded,
  // reproducible) — with node 1 quarantined before the second offered point
  // and revived after it. Load is modest on purpose: availability here is
  // earned by the retry/failover/self-healing layer, not lost to deliberate
  // overload shedding (the SLO sweep above owns that regime).
  std::printf("== chaos sweep (3 nodes, 3%% disk faults, mid-sweep quarantine) ==\n");
  ChaosSection chaos_section;
  {
    serve::ClusterConfig ccfg;
    ccfg.nodes = 3;
    ccfg.vnodes = 128;
    ccfg.replication_factor = 2;
    ccfg.hot_key_threshold = 4;
    ccfg.quarantine_after = 3;
    ccfg.shared_disk_dir = dir + "/chaos_disk";
    ccfg.node.workers = 2;
    ccfg.node.queue_capacity = 64;
    // RAM holds ~3 of each node's ~8 owned+replica products: the Zipf tail
    // spills to the disk tier every episode, so the armed disk fault sites
    // see real traffic instead of an all-RAM run that never reaches them.
    ccfg.node.cache_bytes = one_product_bytes * 3;
    serve::Cluster cluster(ccfg, config, campaign.corrections(), index, model_factory, scaler);

    // Warm every key once (RAM + disk tiers populated) so the storm hits a
    // serving fleet, not a cold start.
    for (const auto& r : universe) (void)cluster.submit(r).get();
    cluster.wait_disk_writebacks();

    chaos_section.disk_fault_rate = 0.03;
    util::fault::Plan plan(2026);
    util::fault::SiteConfig disk_fault;
    disk_fault.fail_rate = chaos_section.disk_fault_rate;
    plan.on("disk.read", disk_fault);
    plan.on("disk.write", disk_fault);
    util::fault::Armed armed(plan);

    bench::LoadgenConfig lg;
    lg.duration_s = 1.0;
    lg.zipf_s = 1.1;
    lg.burst_factor = 2.0;
    lg.burst_every_s = 0.5;
    lg.burst_len_s = 0.1;
    lg.clients = 3;
    lg.deadline_ms = 500.0;  // generous budget: exercises the plumbing,
                             // only a truly wedged job expires
    const auto submit = [&cluster](const serve::ProductRequest& r,
                                   std::optional<serve::Priority>* shed) {
      return cluster.try_submit(r, shed);
    };
    util::Table chaos_table("Chaos sweep (3% disk faults; node 1 out for the 2nd point)");
    chaos_table.set_header({"offered QPS", "served", "offered", "availability", "p99 ms"});
    const std::array<double, 3> offered_points{100.0, 400.0, 400.0};
    for (std::size_t i = 0; i < offered_points.size(); ++i) {
      if (i == 1) cluster.quarantine_node(1);  // mid-sweep fault: node flaps out
      if (i == 2) {
        cluster.revive_node(1);  // heals: ring restored bit-exactly
        (void)cluster.probe_health();
      }
      lg.offered_qps = offered_points[i];
      lg.seed = 77 + static_cast<std::uint64_t>(offered_points[i]) + i;
      const bench::LoadgenResult r = bench::run_open_loop(lg, universe, submit);
      chaos_section.curve.push_back(r);
      const double avail =
          r.offered ? static_cast<double>(r.served) / static_cast<double>(r.offered) : 0.0;
      chaos_table.add_row({std::to_string(r.offered_qps).substr(0, 7), std::to_string(r.served),
                           std::to_string(r.offered), std::to_string(avail).substr(0, 7),
                           std::to_string(r.p99()).substr(0, 7)});
    }
    chaos_section.injected_disk_read = plan.failures("disk.read");
    chaos_section.injected_disk_write = plan.failures("disk.write");
    chaos_section.metrics = cluster.metrics();
    std::printf("%s\n", chaos_table.to_string().c_str());
    std::printf(
        "chaos: %llu/%llu served (availability %.4f), %llu disk.read + %llu disk.write "
        "faults injected, %llu disk-read retries, %llu node failures, %llu quarantines, "
        "%llu revives, %llu keys re-replicated\n\n",
        static_cast<unsigned long long>(chaos_section.served()),
        static_cast<unsigned long long>(chaos_section.offered()), chaos_section.availability(),
        static_cast<unsigned long long>(chaos_section.injected_disk_read),
        static_cast<unsigned long long>(chaos_section.injected_disk_write),
        static_cast<unsigned long long>(chaos_section.metrics.shared_disk.disk_read_retries),
        static_cast<unsigned long long>(chaos_section.metrics.node_failures),
        static_cast<unsigned long long>(chaos_section.metrics.quarantines),
        static_cast<unsigned long long>(chaos_section.metrics.revives),
        static_cast<unsigned long long>(chaos_section.metrics.rereplicated_keys));
    cluster.shutdown();
  }

  // Warm RAM-hit tracing overhead: the same repeat traffic against a fully
  // warmed cache, with the tracer at full sample rate vs sampling disabled.
  // Min-of-3 trials per side so a stray scheduler hiccup cannot fail CI.
  std::printf("== warm-hit tracing overhead (2 workers, %zu requests x %d trials) ==\n",
              warm_requests, TraceOverhead::kTrials);
  TraceOverhead overhead;
  {
    auto warm_hit_mean = [&](double sample_rate) {
      serve::ServiceConfig cfg;
      cfg.workers = 2;
      cfg.cache_bytes = 512u << 20;
      cfg.trace_sample_rate = sample_rate;
      serve::GranuleService service(cfg, config, campaign.corrections(), index, model_factory,
                                    scaler);
      (void)drive(service, universe, 2);  // populate the RAM tier
      double best = 0.0;
      for (int trial = 0; trial < TraceOverhead::kTrials; ++trial) {
        const double mean = drive(service, warm_traffic, 4).mean();
        if (trial == 0 || mean < best) best = mean;
      }
      return best;
    };
    overhead.untraced_mean_ms = warm_hit_mean(0.0);
    overhead.traced_mean_ms = warm_hit_mean(1.0);
    std::printf("warm hit mean: traced %.4f ms vs untraced %.4f ms (%.3fx)\n\n",
                overhead.traced_mean_ms, overhead.untraced_mean_ms, overhead.ratio());
  }

  if (!json_path.empty()) {
    write_json(json_path, worker_rows, sweep_rows, tiers, class_rows, overhead,
               cluster_section, chaos_section);
    // The CI artifacts next to the summary: Prometheus exposition of the
    // last worker run's registry, the cluster's node-labeled merged
    // exposition (both linted by tools/check_prometheus.py) and the span
    // ring as a Perfetto-loadable trace.
    const std::string stem = std::filesystem::path(json_path).replace_extension().string();
    std::ofstream prom(stem + ".prom", std::ios::trunc);
    prom << prom_text;
    std::ofstream cluster_prom(stem + ".cluster.prom", std::ios::trunc);
    cluster_prom << cluster_prom_text;
    std::ofstream trace(stem + ".trace.json", std::ios::trunc);
    trace << perfetto_text;
    std::printf("wrote %s.prom, %s.cluster.prom and %s.trace.json\n", stem.c_str(),
                stem.c_str(), stem.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Tripwire: the disk tier must keep paying for itself.
  if (tiers.disk_speedup() < 5.0) {
    std::fprintf(stderr,
                 "FAIL: warm-disk cold start only %.2fx faster than full rebuild "
                 "(need >= 5x): rebuild %.2f ms vs warm-disk %.2f ms\n",
                 tiers.disk_speedup(), tiers.rebuild_mean_ms, tiers.warm_disk_mean_ms);
    return 1;
  }
  std::printf("warm-disk cold start: %.1fx faster than full rebuild (>= 5x required)\n",
              tiers.disk_speedup());

  // Tripwire: tracing must stay effectively free on the warm RAM-hit path.
  if (!overhead.ok()) {
    std::fprintf(stderr,
                 "FAIL: full-rate tracing slows warm RAM hits by %.1f%% (traced %.4f ms "
                 "vs untraced %.4f ms; need <= 2%% + 5 us)\n",
                 (overhead.ratio() - 1.0) * 100.0, overhead.traced_mean_ms,
                 overhead.untraced_mean_ms);
    return 1;
  }
  std::printf("warm-hit tracing overhead: %+.4f ms (%.2f%%) — within the 2%% + 5 us budget\n",
              overhead.traced_mean_ms - overhead.untraced_mean_ms,
              (overhead.ratio() - 1.0) * 100.0);

  // Tripwire: the router must have moved at least one product across peers
  // (the deterministic hot-key demo guarantees the opportunity).
  if (cluster_section.metrics.peer_fetches == 0) {
    std::fprintf(stderr,
                 "FAIL: cluster run recorded zero peer fetches (%llu probes) — the "
                 "replica-probe-before-rebuild path is dead\n",
                 static_cast<unsigned long long>(cluster_section.metrics.peer_probes));
    return 1;
  }
  std::printf("cluster peer fetch: %llu of %llu probes hit a replica RAM tier\n",
              static_cast<unsigned long long>(cluster_section.metrics.peer_fetches),
              static_cast<unsigned long long>(cluster_section.metrics.peer_probes));

  // Tripwire: the robustness layer must hold availability through the storm.
  if (chaos_section.availability() < 0.99) {
    std::fprintf(stderr,
                 "FAIL: chaos availability %.4f (served %llu of %llu) under %.0f%% disk "
                 "faults + quarantine (need >= 0.99)\n",
                 chaos_section.availability(),
                 static_cast<unsigned long long>(chaos_section.served()),
                 static_cast<unsigned long long>(chaos_section.offered()),
                 chaos_section.disk_fault_rate * 100.0);
    return 1;
  }
  std::printf("chaos availability: %.4f under %.0f%% disk faults + mid-sweep quarantine "
              "(>= 0.99 required)\n",
              chaos_section.availability(), chaos_section.disk_fault_rate * 100.0);
  return 0;
}
