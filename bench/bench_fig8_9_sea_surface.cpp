// Figs. 8 & 9: local sea surface detection along the two named tracks —
// (a) the four detection methods on the 2m ATL03 segments, (b) the ATL03
// NASA-equation surface against the ATL07/ATL10-style reference surface
// (the paper reports agreement within ~0.1 m, with method (iv) smoothest).
#include <cstdio>

#include "baseline/atl07.hpp"
#include "baseline/atl10.hpp"
#include "common.hpp"
#include "seasurface/detector.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace is2;
using seasurface::Method;

double profile_roughness(const seasurface::SeaSurfaceProfile& p) {
  double acc = 0.0;
  for (std::size_t i = 1; i < p.points().size(); ++i)
    acc += std::abs(p.points()[i].h_ref - p.points()[i - 1].h_ref);
  return p.points().size() > 1 ? acc / static_cast<double>(p.points().size() - 1) : 0.0;
}

}  // namespace

int main() {
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const core::Campaign campaign(data.config);
  auto trained = bench::load_or_train_lstm(data);
  const resample::FirstPhotonBiasCorrector fpb(data.config.instrument.dead_time_m,
                                               data.config.instrument.strong_channels);

  const struct {
    std::size_t pair;
    const char* fig;
  } tracks[] = {{1, "Fig. 8"}, {7, "Fig. 9"}};

  for (const auto& trk : tracks) {
    const auto granule = bench::regenerate_granule(data, trk.pair);
    const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                            campaign.corrections(), data.config.preprocess);
    auto segments = resample::resample(pre, data.config.segmenter);
    fpb.apply(segments);
    const auto features = resample::to_features(segments, resample::rolling_baseline(segments));
    const auto cls = core::classify_segments(trained.model, trained.scaler, features,
                                             data.config.sequence_window);

    std::printf("\n%s: local sea surface, IS2 track %s_gt2r\n", trk.fig,
                data.pairs[trk.pair].granule_id.c_str() + 6);

    // (a) four methods, series sampled every 2.5 km.
    const Method methods[] = {Method::MinElevation, Method::AverageElevation,
                              Method::NearestMinElevation, Method::NasaEquation};
    std::vector<seasurface::SeaSurfaceProfile> profiles;
    for (Method m : methods)
      profiles.push_back(
          seasurface::detect_sea_surface(segments, cls, m, data.config.seasurface));

    util::Table series("(a) local sea surface height series [m]");
    series.set_header({"s (km)", "min", "average", "nearest-min", "nasa-eq", "true SSH"});
    const auto surface = campaign.surface(trk.pair);
    for (double s = 0.0; s <= data.config.track_length_m; s += 2'500.0) {
      const double t_s = data.pairs[trk.pair].is2_epoch_s + s / 6'900.0;
      const double truth =
          surface.sea_surface_height(s, t_s) -
          campaign.corrections().total(t_s, surface.track().at(s).x, surface.track().at(s).y);
      series.add_row({util::Table::fmt(s / 1000.0, 1), util::Table::fmt(profiles[0].at(s), 3),
                      util::Table::fmt(profiles[1].at(s), 3),
                      util::Table::fmt(profiles[2].at(s), 3),
                      util::Table::fmt(profiles[3].at(s), 3), util::Table::fmt(truth, 3)});
    }
    series.print();

    util::Table rough("method smoothness (mean |step|, smaller = smoother) and coverage");
    rough.set_header({"method", "mean |step| (m)", "windows", "interpolated %"});
    for (std::size_t m = 0; m < 4; ++m) {
      rough.add_row({seasurface::method_name(methods[m]),
                     util::Table::fmt(profile_roughness(profiles[m]), 4),
                     std::to_string(profiles[m].points().size()),
                     util::Table::fmt(profiles[m].interpolated_fraction() * 100.0, 1)});
    }
    rough.print();

    // (b) ATL03 NASA-equation surface vs the ATL07/ATL10-style reference.
    const auto atl07 = baseline::build_atl07(pre);
    const auto atl10 = baseline::build_atl10(atl07);
    std::vector<double> ours, theirs;
    for (std::size_t sec = 0; sec < atl10.section_ref_height.size(); ++sec) {
      ours.push_back(profiles[3].at(atl10.section_center_s[sec]));
      theirs.push_back(atl10.section_ref_height[sec]);
    }
    std::printf("(b) ATL03 (nasa-eq) vs ATL07/ATL10-style reference surface: "
                "RMS difference %.3f m over %zu sections (paper: ~0.1 m)\n",
                util::rms_diff(ours, theirs), ours.size());
  }
  return 0;
}
