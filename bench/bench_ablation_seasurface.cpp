// Ablation: local sea-surface method choice (the paper compares four and
// picks the NASA equation). Using ground-truth classification labels (to
// isolate the estimator itself), measures each method's sea-surface RMS
// error against the simulator's true sea surface and the resulting
// freeboard RMS error.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "freeboard/freeboard.hpp"
#include "seasurface/detector.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  using atl03::SurfaceClass;
  using seasurface::Method;

  core::PipelineConfig config = core::PipelineConfig::small();
  const auto data = bench::load_or_generate_campaign(config);
  const core::Campaign campaign(config);
  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);

  std::printf("Ablation: sea-surface detection method (truth labels, %zu pairs)\n",
              std::size_t{4});
  util::Table table;
  table.set_header({"Method", "SSH RMS vs truth (m)", "Freeboard RMS vs truth (m)",
                    "Mean |step| (m)"});

  const Method methods[] = {Method::MinElevation, Method::AverageElevation,
                            Method::NearestMinElevation, Method::NasaEquation};
  for (Method method : methods) {
    util::RunningStats ssh_err2, fb_err2, steps;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto granule = bench::regenerate_granule(data, k);
      const auto surface = campaign.surface(k);
      const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                              campaign.corrections(), config.preprocess);
      auto segments = resample::resample(pre, config.segmenter);
      fpb.apply(segments);
      std::vector<SurfaceClass> truth_labels(segments.size());
      for (std::size_t i = 0; i < segments.size(); ++i) truth_labels[i] = segments[i].truth;

      const auto profile =
          seasurface::detect_sea_surface(segments, truth_labels, method, config.seasurface);
      for (const auto& pt : profile.points()) {
        const double t_s = granule.epoch_time + pt.s / 6'900.0;
        const geo::Xy p = surface.track().at(pt.s);
        const double true_ssh = surface.sea_surface_height(pt.s, t_s) -
                                campaign.corrections().total(t_s, p.x, p.y);
        const double e = pt.h_ref - true_ssh;
        ssh_err2.add(e * e);
      }
      for (std::size_t i = 1; i < profile.points().size(); ++i)
        steps.add(std::abs(profile.points()[i].h_ref - profile.points()[i - 1].h_ref));

      const auto product =
          freeboard::compute_freeboard(segments, truth_labels, profile, config.freeboard);
      for (const auto& pt : product.points) {
        const double true_fb = surface.sample(pt.s).freeboard;
        const double e = pt.freeboard - true_fb;
        fb_err2.add(e * e);
      }
    }
    table.add_row({seasurface::method_name(method),
                   util::Table::fmt(std::sqrt(ssh_err2.mean()), 4),
                   util::Table::fmt(std::sqrt(fb_err2.mean()), 4),
                   util::Table::fmt(steps.mean(), 4)});
  }
  table.print();
  std::printf("expected: nasa_equation smoothest and at/near the lowest RMS "
              "(the paper's choice)\n");
  return 0;
}
