// Shared infrastructure for the bench binaries: a disk cache for the
// generated campaign (granule shards + segmented S2 rasters) so the nine
// table/figure benches don't each pay the full simulation cost, plus helpers
// for assembling training data and caching trained model weights.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "nn/model.hpp"

namespace is2::bench {

/// Everything the scaling and product benches need from the campaign.
struct CampaignData {
  core::PipelineConfig config;
  core::ShardSet shards;
  std::vector<s2::ClassRaster> rasters;      ///< segmented S2 labels per pair
  std::vector<geo::Xy> drifts;               ///< true drift per pair
  std::vector<core::CoincidentPair> pairs;
  std::string cache_dir;
};

/// Cache root (override with IS2_BENCH_CACHE env var).
std::string cache_root();

/// Load the campaign from cache or generate + persist it. `n_pairs` limits
/// the campaign size (Table I has 8; product benches need only specific
/// pairs but use the same cache).
CampaignData load_or_generate_campaign(const core::PipelineConfig& config,
                                       std::size_t n_pairs = 8);

/// Rebuild a full granule for one pair (regenerates from the campaign seed;
/// cheap relative to scene rendering and avoids caching raw granules twice).
atl03::Granule regenerate_granule(const CampaignData& data, std::size_t pair_index);

/// Labeled training data assembled from the first `n_pairs` pairs, with
/// windows capped at `max_windows` by stratified subsampling (training cost
/// control; the paper's cluster trains on the full set).
struct BenchTrainingData {
  nn::Dataset train;
  nn::Dataset test;
  resample::FeatureScaler scaler;
};

BenchTrainingData build_training_data(const CampaignData& data, std::size_t n_pairs,
                                      std::size_t max_windows, std::uint64_t seed = 7);

/// Load cached LSTM weights trained by bench_table3; train fresh (quietly)
/// if absent so any bench can run standalone. Returns the model + scaler.
struct TrainedLstm {
  nn::Sequential model;
  resample::FeatureScaler scaler;
};

TrainedLstm load_or_train_lstm(const CampaignData& data, std::size_t epochs = 20);

/// Serialize / parse a ClassRaster through h5lite.
void save_raster(const s2::ClassRaster& raster, const std::string& path);
s2::ClassRaster load_raster(const std::string& path);

/// Simple key=value result cache (Table IV results reused by Fig 5).
void save_kv(const std::string& path, const std::vector<std::pair<std::string, double>>& kv);
std::optional<std::vector<std::pair<std::string, double>>> load_kv(const std::string& path);

}  // namespace is2::bench
