// Table IV: distributed DL model training with the Horovod-style framework
// on thread "GPUs" — time, time/epoch, data/s and speedup for 1, 2, 4, 6, 8
// ranks, synchronous data parallelism with ring all-reduce, batch 32/rank.
// Results are cached for bench_fig5_training_curves.
#include <cstdio>

#include "common.hpp"
#include "dist/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const auto td = bench::build_training_data(data, 8, 32'000);
  std::fprintf(stderr, "[bench] train %zu windows, LSTM, batch 32/rank\n", td.train.size());

  util::Table table("Table IV: distributed LSTM training (ring all-reduce, thread ranks)");
  table.set_header({"Ranks", "Time (s)", "Time (s)/Epoch", "Data/s", "Speedup"});

  std::vector<std::pair<std::string, double>> cache_kv;
  double t1 = 0.0;
  const std::size_t epochs = 8;
  for (int ranks : {1, 2, 4, 6, 8}) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = epochs;
    cfg.batch_per_rank = 32;
    cfg.learning_rate = 0.003;
    const std::uint64_t seed = data.config.seed;
    const auto result = dist::train_distributed(
        [seed] {
          util::Rng rng(seed ^ 0x222ull);
          return nn::make_lstm_model(5, 6, rng);
        },
        td.train, td.test, cfg);
    if (ranks == 1) t1 = result.total_time_s;
    const double speedup = t1 / result.total_time_s;
    table.add_row({std::to_string(ranks), util::Table::fmt(result.total_time_s, 2),
                   util::Table::fmt(result.time_per_epoch_s, 3),
                   util::Table::fmt(result.samples_per_s, 1), util::Table::fmt(speedup, 2)});
    const std::string p = "r" + std::to_string(ranks) + "_";
    cache_kv.emplace_back(p + "total_s", result.total_time_s);
    cache_kv.emplace_back(p + "epoch_s", result.time_per_epoch_s);
    cache_kv.emplace_back(p + "data_per_s", result.samples_per_s);
    cache_kv.emplace_back(p + "accuracy", result.test_metrics.accuracy);
    std::fprintf(stderr, "[bench] ranks=%d  acc=%.4f  floats all-reduced/rank=%zu\n", ranks,
                 result.test_metrics.accuracy, result.floats_reduced);
  }
  table.print();
  std::printf("(epochs=%zu; paper shape: near-linear speedup with a sub-linear knee at 8)\n",
              epochs);
  bench::save_kv(data.cache_dir + "/table4.kv", cache_kv);
  return 0;
}
