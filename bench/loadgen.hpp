// Traffic harnesses for the serving benches: an *open-loop* load generator
// (Poisson arrivals with burst episodes, Zipf-distributed key popularity,
// mixed priority classes) and the closed-loop driver the worker/cache
// sweeps use.
//
// Open vs closed loop matters for SLO curves. A closed-loop client waits
// for each response before sending the next request, so under overload it
// self-throttles to the service rate and latency plots flatter than
// reality (coordinated omission). The open-loop generator instead commits
// to an arrival schedule *up front* — a deterministic function of the seed
// — and fires each request at its scheduled instant with `try_submit`
// (never blocking), so offered load keeps arriving while the fleet is
// saturated and the shed/latency numbers reflect what real traffic would
// see. Sweeping `offered_qps` yields the p99-vs-offered and shed-rate
// curves `BENCH_serve.json`'s `cluster` section records.
//
// Latency accounting: a served request reports the scheduler-side
// `ProductResponse::service_ms` (queue wait + execution; RAM fast hits
// report ~0) harvested from the future after the run — job-side timestamps,
// immune to harvest-thread scheduling artifacts. Waiters coalesced onto one
// job share that job's sample. Requests shed at arrival (`try_submit` ->
// nullopt) and waiters failed with `ShedError` are counted per class, not
// in the latency distribution.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace is2::bench {

/// Zipf(s) sampler over ranks [0, n): P(rank k) ∝ 1/(k+1)^s, via a
/// precomputed CDF + binary search. Rank 0 is the most popular key.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  std::size_t operator()(util::Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Target of a traffic run: any shed-capable submit surface (a
/// serve::Cluster, a single GranuleService, ...). Must be thread-safe.
using SubmitFn = std::function<std::optional<serve::ProductFuture>(
    const serve::ProductRequest&, std::optional<serve::Priority>*)>;

struct LoadgenConfig {
  double offered_qps = 200.0;  ///< base arrival rate (Poisson)
  double duration_s = 1.0;
  double zipf_s = 1.1;  ///< popularity skew over the request universe
  /// Burst episodes: while inside an episode the arrival rate is
  /// offered_qps * burst_factor. 1.0 disables bursting.
  double burst_factor = 1.0;
  double burst_every_s = 0.5;  ///< episode start-to-start period
  double burst_len_s = 0.1;
  /// Priority mix (interactive, batch, background) — unnormalized weights.
  std::array<double, serve::kPriorityClasses> class_mix{2.0, 3.0, 5.0};
  std::size_t clients = 2;  ///< firing threads (arrivals round-robined)
  std::uint64_t seed = 1;   ///< fixes the whole schedule (arrivals, keys, classes)
  /// Stamped onto every fired request (0 = none): a request still queued
  /// after this many ms is dropped with serve::DeadlineError at dequeue,
  /// harvested into the per-class `deadline_expired` bucket.
  double deadline_ms = 0.0;
};

struct ClassOutcome {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t shed_arrival = 0;   ///< try_submit returned nullopt
  std::uint64_t shed_displaced = 0; ///< future failed with ShedError
  std::uint64_t deadline_expired = 0;  ///< future failed with DeadlineError
  std::uint64_t errors = 0;         ///< any other exception

  std::uint64_t shed() const { return shed_arrival + shed_displaced; }
  double shed_rate() const {
    return offered ? static_cast<double>(shed()) / static_cast<double>(offered) : 0.0;
  }
};

struct LoadgenResult {
  double offered_qps = 0.0;   ///< from the realized schedule, not the config
  double achieved_qps = 0.0;  ///< served / wall (wall includes harvest)
  double wall_s = 0.0;
  std::uint64_t offered = 0, served = 0;
  std::array<ClassOutcome, serve::kPriorityClasses> by_class{};
  std::vector<double> latency_ms;  ///< service_ms of every served request

  double p50() const { return util::percentile(latency_ms, 50.0); }
  double p99() const { return util::percentile(latency_ms, 99.0); }
  double mean() const { return util::mean(latency_ms); }
  std::uint64_t shed() const;
  double shed_rate() const {
    return offered ? static_cast<double>(shed()) / static_cast<double>(offered) : 0.0;
  }
};

/// Fire an open-loop run against `submit`. `universe_ranked` is the request
/// universe in popularity-rank order (index 0 = Zipf head); each arrival
/// samples a rank and a priority class from the config's mix.
LoadgenResult run_open_loop(const LoadgenConfig& config,
                            const std::vector<serve::ProductRequest>& universe_ranked,
                            const SubmitFn& submit);

/// Closed-loop driver (the worker/cache-sweep measurement): `clients`
/// threads share `requests`, each submitting and waiting at the
/// submit->get boundary. Self-throttling by design — use for capacity and
/// per-request-latency measurements, not SLO curves.
struct TrafficResult {
  double wall_s = 0.0;
  std::vector<double> latency_ms;

  double qps() const {
    return wall_s > 0 ? static_cast<double>(latency_ms.size()) / wall_s : 0;
  }
  double p50() const { return util::percentile(latency_ms, 50.0); }
  double p99() const { return util::percentile(latency_ms, 99.0); }
  double mean() const { return util::mean(latency_ms); }
};

TrafficResult drive_closed_loop(serve::GranuleService& service,
                                const std::vector<serve::ProductRequest>& requests,
                                std::size_t clients);

}  // namespace is2::bench
