// Table I: IS2 ATL03 / Sentinel-2 coincident pairs in the Ross Sea,
// November 2019 — acquisition times, time differences, and the S2 alignment
// shift. The paper determined the shifts manually; here each pair's drift
// is *estimated* from the data by the consistency search and printed next
// to the injected truth, demonstrating the automated alignment.
#include <cstdio>

#include "common.hpp"
#include "label/drift.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  // Moderate scene scale: drift estimation needs a few km of track, not 50.
  core::PipelineConfig config = core::PipelineConfig::small();
  const auto data = bench::load_or_generate_campaign(config);
  const core::Campaign campaign(config);

  std::printf("Table I: IS2 ATL03 and S2 coincident pairs (Ross Sea, November 2019)\n");
  util::Table table;
  table.set_header({"#", "IS2 acquisition (UTC)", "S2 acquisition (UTC)", "dt (min)",
                    "Shift of S2 (paper)", "Shift recovered (estimator)", "score"});

  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);
  for (std::size_t k = 0; k < data.pairs.size(); ++k) {
    const auto& pair = data.pairs[k];

    // Estimate drift from the central strong beam against the cached raster.
    const auto granule = bench::regenerate_granule(data, k);
    const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                            campaign.corrections(), config.preprocess);
    auto segments = resample::resample(pre, config.segmenter);
    fpb.apply(segments);
    const auto baseline = resample::rolling_baseline(segments);
    const auto est = label::estimate_drift(data.rasters[k], segments, baseline);

    // The estimator returns the shift applied to IS2 positions; the paper
    // reports the equal-and-opposite shift applied to the S2 image.
    const geo::Xy s2_shift{-est.shift.x, -est.shift.y};
    table.add_row({std::to_string(pair.index), pair.is2_time_utc, pair.s2_time_utc,
                   util::Table::fmt(pair.dt_minutes, 2),
                   label::describe_shift(pair.s2_shift_applied),
                   label::describe_shift(s2_shift), util::Table::fmt(est.score, 3)});
  }
  table.print();
  return 0;
}
