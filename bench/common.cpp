#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>

#include "h5lite/granule_io.hpp"
#include "nn/serialize.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace is2::bench {

namespace fs = std::filesystem;

std::string cache_root() {
  if (const char* env = std::getenv("IS2_BENCH_CACHE")) return env;
  return (fs::temp_directory_path() / "is2seaice_bench_cache").string();
}

namespace {

std::string campaign_key(const core::PipelineConfig& cfg, std::size_t n_pairs) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "campaign_L%.0f_c%zu_s%llu_p%zu",
                cfg.track_length_m, cfg.chunks_per_beam,
                static_cast<unsigned long long>(cfg.seed), n_pairs);
  return buf;
}

}  // namespace

void save_raster(const s2::ClassRaster& raster, const std::string& path) {
  h5::File f;
  f.put<std::uint8_t>("/raster/labels", raster.data(),
                      {raster.rows(), raster.cols()});
  f.set_attr("/raster/x0", raster.transform().x0);
  f.set_attr("/raster/y0", raster.transform().y0);
  f.set_attr("/raster/pixel", raster.transform().pixel);
  f.save(path);
}

s2::ClassRaster load_raster(const std::string& path) {
  const h5::File f = h5::File::load(path);
  const auto shape = f.shape("/raster/labels");
  s2::GeoTransform gt{f.attr_double("/raster/x0"), f.attr_double("/raster/y0"),
                      f.attr_double("/raster/pixel")};
  s2::ClassRaster raster(shape[0], shape[1], gt);
  raster.data() = f.get<std::uint8_t>("/raster/labels");
  return raster;
}

void save_kv(const std::string& path, const std::vector<std::pair<std::string, double>>& kv) {
  std::ofstream out(path);
  for (const auto& [k, v] : kv) out << k << "=" << std::setprecision(17) << v << "\n";
}

std::optional<std::vector<std::pair<std::string, double>>> load_kv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<std::pair<std::string, double>> kv;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv.emplace_back(line.substr(0, eq), std::stod(line.substr(eq + 1)));
  }
  return kv;
}

CampaignData load_or_generate_campaign(const core::PipelineConfig& config, std::size_t n_pairs) {
  CampaignData data;
  data.config = config;
  data.pairs = core::ross_sea_november_2019();
  if (n_pairs < data.pairs.size()) data.pairs.resize(n_pairs);

  const fs::path dir = fs::path(cache_root()) / campaign_key(config, n_pairs);
  data.cache_dir = dir.string();
  const fs::path manifest = dir / "MANIFEST";

  if (fs::exists(manifest)) {
    // Cache hit: read shard list + rasters + drifts.
    std::ifstream in(manifest);
    std::size_t n_files = 0;
    in >> n_files;
    for (std::size_t i = 0; i < n_files; ++i) {
      std::string file;
      std::size_t pair;
      in >> file >> pair;
      data.shards.files.push_back((dir / file).string());
      data.shards.pair_of_file.push_back(pair);
    }
    for (std::size_t k = 0; k < n_pairs; ++k) {
      data.rasters.push_back(load_raster((dir / ("raster" + std::to_string(k) + ".h5l")).string()));
      double dx, dy;
      in >> dx >> dy;
      data.drifts.push_back({dx, dy});
    }
    return data;
  }

  std::fprintf(stderr, "[bench] generating campaign (%zu pairs, %.0f km tracks) into %s ...\n",
               n_pairs, config.track_length_m / 1000.0, dir.c_str());
  fs::create_directories(dir);
  const core::Campaign campaign(config);
  std::ofstream out(manifest.string() + ".tmp");
  core::ShardSet shards;
  std::vector<geo::Xy> drifts;
  for (std::size_t k = 0; k < n_pairs; ++k) {
    const core::PairDataset pair = campaign.generate(k);
    core::write_shards(pair.granule, k, config.chunks_per_beam, dir.string(), shards);
    save_raster(pair.s2_labels, (dir / ("raster" + std::to_string(k) + ".h5l")).string());
    data.rasters.push_back(pair.s2_labels);
    drifts.push_back(pair.pair.true_drift());
    std::fprintf(stderr, "[bench]   pair %zu: %zu photons, S2 segmentation accuracy %.3f\n",
                 k + 1, pair.granule.total_photons(), pair.segmentation_accuracy);
  }
  out << shards.files.size() << "\n";
  for (std::size_t i = 0; i < shards.files.size(); ++i) {
    out << fs::path(shards.files[i]).filename().string() << " " << shards.pair_of_file[i]
        << "\n";
    data.shards.files.push_back(shards.files[i]);
    data.shards.pair_of_file.push_back(shards.pair_of_file[i]);
  }
  for (const auto& d : drifts) out << std::setprecision(17) << d.x << " " << d.y << "\n";
  data.drifts = drifts;
  out.close();
  fs::rename(manifest.string() + ".tmp", manifest);
  return data;
}

atl03::Granule regenerate_granule(const CampaignData& data, std::size_t pair_index) {
  const core::Campaign campaign(data.config);
  const auto surf = campaign.surface(pair_index);
  atl03::PhotonSimulator sim(data.config.instrument,
                             util::hash64(data.config.seed * 977 + pair_index));
  return sim.simulate_granule(surf, data.pairs.at(pair_index).granule_id,
                              data.pairs.at(pair_index).is2_epoch_s);
}

BenchTrainingData build_training_data(const CampaignData& data, std::size_t n_pairs,
                                      std::size_t max_windows, std::uint64_t seed) {
  const core::Campaign campaign(data.config);
  std::vector<core::LabeledPair> labeled;
  for (std::size_t k = 0; k < std::min(n_pairs, data.pairs.size()); ++k) {
    core::PairDataset pd{data.pairs[k], regenerate_granule(data, k), data.rasters[k],
                         data.rasters[k], 0.0, 0};
    labeled.push_back(core::label_pair(pd, campaign.corrections(), data.config));
  }
  auto full = core::assemble_training_data(labeled, data.config, 0.8, seed);

  BenchTrainingData out;
  out.scaler = full.scaler;
  if (full.train.size() > max_windows) {
    // Deterministic subsample of the (already shuffled) training tensor.
    std::vector<std::size_t> idx(max_windows);
    const double stride =
        static_cast<double>(full.train.size()) / static_cast<double>(max_windows);
    for (std::size_t i = 0; i < max_windows; ++i)
      idx[i] = static_cast<std::size_t>(static_cast<double>(i) * stride);
    out.train = full.train.subset(idx);
  } else {
    out.train = std::move(full.train);
  }
  const std::size_t max_test = max_windows / 4;
  if (full.test.size() > max_test) {
    std::vector<std::size_t> idx(max_test);
    const double stride =
        static_cast<double>(full.test.size()) / static_cast<double>(max_test);
    for (std::size_t i = 0; i < max_test; ++i)
      idx[i] = static_cast<std::size_t>(static_cast<double>(i) * stride);
    out.test = full.test.subset(idx);
  } else {
    out.test = std::move(full.test);
  }
  return out;
}

TrainedLstm load_or_train_lstm(const CampaignData& data, std::size_t epochs) {
  const fs::path weights = fs::path(data.cache_dir) / "lstm_weights.h5l";
  const fs::path scaler_path = fs::path(data.cache_dir) / "scaler.h5l";

  util::Rng rng(data.config.seed ^ 0x7517ull);
  TrainedLstm out{nn::make_lstm_model(data.config.sequence_window, 6, rng), {}};

  if (fs::exists(weights) && fs::exists(scaler_path)) {
    nn::load_weights(out.model, weights.string());
    const h5::File f = h5::File::load(scaler_path.string());
    const auto mean = f.get<float>("/scaler/mean");
    const auto stdv = f.get<float>("/scaler/std");
    for (int d = 0; d < resample::FeatureRow::kDim; ++d) {
      out.scaler.mean[d] = mean[static_cast<std::size_t>(d)];
      out.scaler.std[d] = stdv[static_cast<std::size_t>(d)];
    }
    return out;
  }

  std::fprintf(stderr, "[bench] no cached LSTM weights; training (%zu epochs)...\n", epochs);
  const auto td = build_training_data(data, data.pairs.size(), 32'000);
  out.scaler = td.scaler;
  nn::Adam adam(0.003);
  nn::FocalLoss loss(2.0, nn::FocalLoss::balanced_alpha(td.train.y));
  nn::FitConfig fit;
  fit.epochs = epochs;
  fit.batch_size = 32;
  out.model.fit(td.train, loss, adam, fit);

  nn::save_weights(out.model, weights.string());
  h5::File f;
  f.put<float>("/scaler/mean",
               std::span<const float>(out.scaler.mean, resample::FeatureRow::kDim));
  f.put<float>("/scaler/std",
               std::span<const float>(out.scaler.std, resample::FeatureRow::kDim));
  f.save(scaler_path.string());
  return out;
}

}  // namespace is2::bench
