// Table V: PySpark-based IS2 freeboard computation scalability.
//
// Same executors x cores grid as Table II, but the REDUCE stage runs the
// freeboard pipeline per partition: preprocessing, 2m resampling, surface
// classification, NASA-equation local sea surface in sliding 10 km windows,
// and h_f = h_s - h_ref.
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const core::Campaign campaign(data.config);

  std::printf("Table V: map-reduce IS2 freeboard computation scalability "
              "(%zu shard partitions, 8 granules)\n",
              data.shards.files.size());

  util::Table table;
  table.set_header({"Executors", "Cores", "Load Time (s)", "Map Time (s)", "Reduce Time (s)",
                    "Speed-up Load", "Speed-up Reduce"});

  double load_base = 0.0, reduce_base = 0.0;
  core::FreeboardJobStats first;
  for (std::size_t execs : {1, 2, 4}) {
    for (std::size_t cores : {1, 2, 4}) {
      mapred::Engine engine({execs, cores});
      const auto stats = core::run_freeboard_job(engine, data.shards, data.rasters, data.drifts,
                                                 campaign.corrections(), data.config);
      if (execs == 1 && cores == 1) {
        load_base = stats.timing.load_s;
        reduce_base = stats.timing.reduce_s;
        first = stats;
      }
      table.add_row({std::to_string(execs), std::to_string(cores),
                     util::Table::fmt(stats.timing.load_s, 2),
                     util::Table::fmt(stats.timing.map_s, 3),
                     util::Table::fmt(stats.timing.reduce_s, 2),
                     util::Table::fmt(load_base / stats.timing.load_s, 2),
                     util::Table::fmt(reduce_base / stats.timing.reduce_s, 2)});
    }
  }
  table.print();
  std::printf("freeboard points: %zu   mean freeboard: %.3f m\n", first.points,
              first.mean_freeboard);
  return 0;
}
