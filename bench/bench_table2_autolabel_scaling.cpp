// Table II: PySpark-based IS2 auto-labeling scalability.
//
// Reproduces the paper's executors x cores grid {1,2,4} x {1,2,4} over the
// 8-pair Ross Sea campaign. LOAD = reading granule shard files, MAP = the
// cheap key-assignment transformation, REDUCE = preprocessing + 2m
// resampling + S2 overlay labeling per partition. Speedups are relative to
// the 1 executor x 1 core row, like the paper's.
#include <cstdio>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const core::Campaign campaign(data.config);

  std::printf("Table II: map-reduce IS2 auto-labeling scalability "
              "(%zu shard partitions, 8 granules)\n",
              data.shards.files.size());

  util::Table table;
  table.set_header({"Executors", "Cores", "Load Time (s)", "Map Time (s)", "Reduce Time (s)",
                    "Speed-up Load", "Speed-up Reduce"});

  double load_base = 0.0, reduce_base = 0.0;
  core::AutoLabelJobStats first{};
  for (std::size_t execs : {1, 2, 4}) {
    for (std::size_t cores : {1, 2, 4}) {
      mapred::Engine engine({execs, cores});
      const auto stats = core::run_autolabel_job(engine, data.shards, data.rasters, data.drifts,
                                                 campaign.corrections(), data.config);
      if (execs == 1 && cores == 1) {
        load_base = stats.timing.load_s;
        reduce_base = stats.timing.reduce_s;
        first = stats;
      }
      table.add_row({std::to_string(execs), std::to_string(cores),
                     util::Table::fmt(stats.timing.load_s, 2),
                     util::Table::fmt(stats.timing.map_s, 3),
                     util::Table::fmt(stats.timing.reduce_s, 2),
                     util::Table::fmt(load_base / stats.timing.load_s, 2),
                     util::Table::fmt(reduce_base / stats.timing.reduce_s, 2)});
    }
  }
  table.print();
  std::printf("segments labeled: %zu / %zu   auto-label accuracy vs truth: %.4f\n",
              first.labeled, first.segments, first.label_accuracy);
  return 0;
}
