// Micro-benchmark + correctness guard for the rolling-baseline kernels: the
// O(n log w) util::RollingPercentile-based resample::rolling_baseline vs the
// gather-and-sort reference oracle, across track lengths and window widths.
//
// Exits non-zero when the fast kernel diverges from the oracle by a single
// bit, or when it fails to beat the oracle by the guard factor on the large
// scenario — this is the regression tripwire for the serve cold-build
// latency win (features stage used to spend ~670 ms of a ~790 ms build
// re-sorting baseline windows).
//
//   ./bench/bench_baseline_kernels
#include <cstdio>
#include <vector>

#include "resample/segmenter.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace is2;

std::vector<resample::Segment> synth_track(std::size_t n, util::Rng& rng) {
  std::vector<resample::Segment> segs(n);
  double s = 0.0;
  for (auto& seg : segs) {
    // Mostly nominal 2 m spacing with occasional min_photons-style gaps and
    // duplicate centers, mirroring real resampler output.
    const double r = rng.uniform();
    if (r < 0.02)
      ;  // duplicate s
    else if (r < 0.97)
      s += 2.0;
    else
      s += 2.0 * static_cast<double>(2 + rng.next() % 30);
    seg.s = s;
    seg.h_mean = rng.normal(-54.0, 0.4);
  }
  return segs;
}

}  // namespace

int main() {
  util::Rng rng(2025);
  util::Table table("rolling_baseline: incremental vs reference oracle (5th percentile)");
  table.set_header({"segments", "window", "oracle ms", "fast ms", "speedup", "bit-identical"});

  bool all_identical = true;
  double guarded_speedup = 0.0;
  const std::size_t guarded_n = 100'000;

  for (const std::size_t n : {std::size_t{5'000}, std::size_t{25'000}, guarded_n}) {
    const auto segs = synth_track(n, rng);
    for (const double window_m : {2'000.0, 10'000.0}) {
      util::Timer t_ref;
      const auto oracle = resample::rolling_baseline_reference(segs, window_m, 5.0);
      const double ref_ms = t_ref.millis();

      util::Timer t_fast;
      const auto fast = resample::rolling_baseline(segs, window_m, 5.0);
      const double fast_ms = t_fast.millis();

      bool identical = fast.size() == oracle.size();
      for (std::size_t i = 0; identical && i < fast.size(); ++i)
        identical = fast[i] == oracle[i];
      all_identical = all_identical && identical;

      const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
      if (n == guarded_n && window_m == 10'000.0) guarded_speedup = speedup;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1fx", speedup);
      table.add_row({std::to_string(n), std::to_string(static_cast<int>(window_m)) + " m",
                     std::to_string(ref_ms).substr(0, 8), std::to_string(fast_ms).substr(0, 8),
                     buf, identical ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: fast rolling_baseline diverged from the reference oracle\n");
    return 1;
  }
  // Conservative guard: the real win is ~2 orders of magnitude; 3x leaves
  // plenty of headroom against noisy CI machines.
  if (guarded_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: expected >= 3x over the oracle at n=%zu, got %.2fx\n",
                 guarded_n, guarded_speedup);
    return 1;
  }
  std::printf("OK: bit-identical, %.0fx over the oracle at n=%zu / 10 km window\n",
              guarded_speedup, guarded_n);
  return 0;
}
