// Figs. 6 & 7: sea-ice classification comparison of the 2m ATL03 product
// (this pipeline, LSTM) against the ATL07-style product (150-photon
// segments, rule-tree classification) along the paper's two named tracks:
// 20191104195311_05940510_gt2r and 20191126182014_09290510_gt2r.
// Prints class strips, per-class fractions and product density.
#include <cstdio>
#include <string>

#include "baseline/atl07.hpp"
#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;

char class_char(SurfaceClass c) {
  switch (c) {
    case SurfaceClass::ThickIce: return '#';   // blue in the paper's figures
    case SurfaceClass::ThinIce: return '-';    // green
    case SurfaceClass::OpenWater: return '~';  // orange
    default: return ' ';
  }
}

/// Render a class sequence as a fixed-width strip (majority per bucket).
std::string strip(const std::vector<double>& s, const std::vector<SurfaceClass>& cls,
                  double s_max, std::size_t width = 100) {
  std::string out(width, ' ');
  std::vector<std::array<int, 3>> votes(width, {0, 0, 0});
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (cls[i] == SurfaceClass::Unknown) continue;
    auto b = static_cast<std::size_t>(s[i] / s_max * static_cast<double>(width));
    b = std::min(b, width - 1);
    ++votes[b][static_cast<int>(cls[i])];
  }
  for (std::size_t b = 0; b < width; ++b) {
    int best = 0;
    for (int c = 1; c < 3; ++c)
      if (votes[b][c] > votes[b][best]) best = c;
    if (votes[b][best] > 0) out[b] = class_char(static_cast<SurfaceClass>(best));
  }
  return out;
}

}  // namespace

int main() {
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  const core::Campaign campaign(data.config);
  auto trained = bench::load_or_train_lstm(data);
  const resample::FirstPhotonBiasCorrector fpb(data.config.instrument.dead_time_m,
                                               data.config.instrument.strong_channels);

  const struct {
    std::size_t pair;
    const char* fig;
  } tracks[] = {{1, "Fig. 6"}, {7, "Fig. 7"}};

  for (const auto& trk : tracks) {
    const auto granule = bench::regenerate_granule(data, trk.pair);
    const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                            campaign.corrections(), data.config.preprocess);
    auto segments = resample::resample(pre, data.config.segmenter);
    fpb.apply(segments);
    const auto baseline_h = resample::rolling_baseline(segments);
    const auto features = resample::to_features(segments, baseline_h);
    const auto atl03_cls = core::classify_segments(trained.model, trained.scaler, features,
                                                   data.config.sequence_window);

    const auto atl07 = baseline::build_atl07(pre);

    std::printf("\n%s: sea-ice classification, IS2 track %s_gt2r "
                "(# thick ice, - thin ice, ~ open water)\n",
                trk.fig, data.pairs[trk.pair].granule_id.c_str() + 6);

    std::vector<double> s03(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i) s03[i] = segments[i].s;
    std::printf("  (a) ATL03 2m product (this pipeline, LSTM):\n  [%s]\n",
                strip(s03, atl03_cls, data.config.track_length_m).c_str());

    std::vector<double> s07(atl07.segments.size());
    std::vector<SurfaceClass> c07(atl07.segments.size());
    for (std::size_t i = 0; i < atl07.segments.size(); ++i) {
      s07[i] = atl07.segments[i].s_center;
      c07[i] = atl07.segments[i].type;
    }
    std::printf("  (b) ATL07-style product (150-photon segments, rule tree):\n  [%s]\n",
                strip(s07, c07, data.config.track_length_m).c_str());

    // Class fractions + density comparison.
    auto fractions = [](const std::vector<SurfaceClass>& cls) {
      std::array<double, 3> f{0, 0, 0};
      std::size_t n = 0;
      for (auto c : cls)
        if (c != SurfaceClass::Unknown) {
          ++f[static_cast<int>(c)];
          ++n;
        }
      for (auto& v : f) v /= std::max<double>(1.0, static_cast<double>(n));
      return f;
    };
    const auto f03 = fractions(atl03_cls);
    const auto f07 = fractions(c07);

    is2::util::Table table;
    table.set_header({"Product", "Segments", "Mean seg len (m)", "Segs/km", "thick %",
                      "thin %", "water %", "accuracy vs truth"});
    // ATL03 truth accuracy:
    std::size_t ok = 0, known = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].truth == SurfaceClass::Unknown || atl03_cls[i] == SurfaceClass::Unknown)
        continue;
      ++known;
      if (segments[i].truth == atl03_cls[i]) ++ok;
    }
    const double km = data.config.track_length_m / 1000.0;
    table.add_row({"ATL03 2m (ours)", std::to_string(segments.size()),
                   is2::util::Table::fmt(2.0, 1),
                   is2::util::Table::fmt(static_cast<double>(segments.size()) / km, 0),
                   is2::util::Table::fmt(f03[0] * 100, 1), is2::util::Table::fmt(f03[1] * 100, 1),
                   is2::util::Table::fmt(f03[2] * 100, 1),
                   is2::util::Table::fmt(100.0 * static_cast<double>(ok) /
                                             static_cast<double>(std::max<std::size_t>(known, 1)),
                                         2)});
    table.add_row({"ATL07-style", std::to_string(atl07.segments.size()),
                   is2::util::Table::fmt(atl07.mean_segment_length(), 1),
                   is2::util::Table::fmt(static_cast<double>(atl07.segments.size()) / km, 0),
                   is2::util::Table::fmt(f07[0] * 100, 1), is2::util::Table::fmt(f07[1] * 100, 1),
                   is2::util::Table::fmt(f07[2] * 100, 1),
                   is2::util::Table::fmt(atl07.classification_accuracy() * 100.0, 2)});
    table.print();
    std::printf("  density ratio (ATL03 2m : ATL07) = %.1fx  — the paper's higher-resolution "
                "claim\n",
                static_cast<double>(segments.size()) /
                    static_cast<double>(std::max<std::size_t>(atl07.segments.size(), 1)));
  }
  return 0;
}
