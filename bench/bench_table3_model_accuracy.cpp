// Table III: DL model sea-ice classification accuracy over the (simulated)
// IS2 ATL03 Antarctic datasets — MLP vs LSTM with the paper's training
// protocol: 80/20 split, Adam(0.003), focal loss, dropout 0.2, batch 32,
// 20 epochs. Also caches the trained LSTM for the downstream figure benches.
#include <cstdio>

#include "common.hpp"
#include "h5lite/h5file.hpp"
#include "nn/serialize.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());

  std::fprintf(stderr, "[bench] assembling training data from 8 auto-labeled pairs...\n");
  const auto td = bench::build_training_data(data, 8, 32'000);
  std::fprintf(stderr, "[bench] train %zu / test %zu windows\n", td.train.size(),
               td.test.size());

  const auto alpha = nn::FocalLoss::balanced_alpha(td.train.y);
  nn::FitConfig fit;
  fit.epochs = 20;
  fit.batch_size = 32;

  util::Table table("Table III: sea-ice classification accuracy (percent, macro-averaged)");
  table.set_header({"Model", "Accuracy", "Precision", "Recall", "F1 score", "Train time (s)"});

  nn::Metrics lstm_metrics;
  nn::Sequential lstm_model;
  for (const char* name : {"MLP", "LSTM"}) {
    util::Rng rng(data.config.seed ^ (name[0] == 'M' ? 0x111ull : 0x222ull));
    nn::Sequential model = name[0] == 'M'
                               ? nn::make_mlp_model(data.config.sequence_window, 6, rng)
                               : nn::make_lstm_model(data.config.sequence_window, 6, rng);
    nn::Adam adam(0.003);
    nn::FocalLoss loss(2.0, alpha);
    util::Timer timer;
    model.fit(td.train, loss, adam, fit);
    const double train_s = timer.seconds();
    const nn::Metrics m = model.evaluate(td.test);
    table.add_row({name, util::Table::fmt(m.accuracy * 100.0, 2),
                   util::Table::fmt(m.precision * 100.0, 2),
                   util::Table::fmt(m.recall * 100.0, 2), util::Table::fmt(m.f1 * 100.0, 2),
                   util::Table::fmt(train_s, 1)});
    if (name[0] == 'L') {
      lstm_metrics = m;
      lstm_model = std::move(model);
    }
  }
  table.print();

  std::printf("\nLSTM per-class recall (Fig. 4 diagonal):\n%s",
              lstm_metrics.confusion.render().c_str());

  // Cache the trained LSTM + scaler for the figure benches.
  nn::save_weights(lstm_model, data.cache_dir + "/lstm_weights.h5l");
  h5::File f;
  f.put<float>("/scaler/mean",
               std::span<const float>(td.scaler.mean, resample::FeatureRow::kDim));
  f.put<float>("/scaler/std",
               std::span<const float>(td.scaler.std, resample::FeatureRow::kDim));
  f.save(data.cache_dir + "/scaler.h5l");
  return 0;
}
