// Ablation: drift alignment. The paper shifts S2 images per Table I before
// label transfer. This bench quantifies what that buys: auto-label accuracy
// with (i) no alignment, (ii) the estimator's shift, (iii) the true shift —
// on the pair with the largest drift (550 m NW) and on a zero-drift pair.
#include <cstdio>

#include "common.hpp"
#include "label/drift.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  core::PipelineConfig config = core::PipelineConfig::small();
  const auto data = bench::load_or_generate_campaign(config);
  const core::Campaign campaign(config);
  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);

  std::printf("Ablation: effect of S2/IS2 drift alignment on auto-label accuracy\n");
  util::Table table;
  table.set_header({"Pair", "True S2 shift", "Mode", "Applied shift", "Label accuracy %"});

  for (std::size_t k : {std::size_t{0}, std::size_t{1}}) {  // 550m NW and 0m pairs
    const auto granule = bench::regenerate_granule(data, k);
    const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                            campaign.corrections(), config.preprocess);
    auto segments = resample::resample(pre, config.segmenter);
    fpb.apply(segments);
    const auto baseline = resample::rolling_baseline(segments);
    const auto est = label::estimate_drift(data.rasters[k], segments, baseline);

    const struct {
      const char* name;
      geo::Xy shift;
    } modes[] = {{"none", {0.0, 0.0}},
                 {"estimated", est.shift},
                 {"true", data.drifts[k]}};
    for (const auto& mode : modes) {
      label::AutoLabelConfig al = config.autolabel;
      al.overlay.shift = mode.shift;
      al.manual_fix_rate = 0.0;  // isolate alignment: no human cleanup
      const auto lb = label::auto_label(data.rasters[k], segments, al);
      table.add_row({std::to_string(k + 1),
                     label::describe_shift(data.pairs[k].s2_shift_applied), mode.name,
                     label::describe_shift({-mode.shift.x, -mode.shift.y}),
                     util::Table::fmt(lb.label_accuracy() * 100.0, 2)});
    }
  }
  table.print();
  std::printf("expected: alignment matters on the drifted pair, is neutral on the 0 m pair\n");
  return 0;
}
