// Ablation: resampling window size. The paper picks 2 m; this sweeps
// 1/2/5/10/50 m and reports product density, per-segment photon counts,
// auto-label accuracy and height noise — the resolution-vs-robustness
// trade the 2m choice sits on.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  core::PipelineConfig config = core::PipelineConfig::small();
  const auto data = bench::load_or_generate_campaign(config);
  const core::Campaign campaign(config);

  const auto granule = bench::regenerate_granule(data, 1);
  const auto surface = campaign.surface(1);
  const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r),
                                          campaign.corrections(), config.preprocess);

  std::printf("Ablation: resampling window size (track %s_gt2r)\n",
              data.pairs[1].granule_id.c_str() + 6);
  util::Table table;
  table.set_header({"Window (m)", "Segments/km", "Mean photons/seg", "Empty windows %",
                    "Auto-label accuracy %", "Height error RMS (m)"});

  for (double window : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    resample::SegmenterConfig scfg = config.segmenter;
    scfg.window_m = window;
    auto segments = resample::resample(pre, scfg);
    const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                                 config.instrument.strong_channels);
    fpb.apply(segments);

    util::RunningStats photons, h_err2;
    for (const auto& seg : segments) {
      photons.add(seg.n_photons);
      const double t_s = granule.epoch_time + seg.s / 6'900.0;
      const geo::Xy p = surface.track().at(seg.s);
      const double true_h = surface.surface_height(seg.s, t_s) -
                            campaign.corrections().total(t_s, p.x, p.y);
      const double e = seg.h_mean - true_h;
      h_err2.add(e * e);
    }
    const double expected_windows = config.track_length_m / window;
    const double empty_pct =
        100.0 * (1.0 - static_cast<double>(segments.size()) / expected_windows);

    label::AutoLabelConfig al = config.autolabel;
    al.overlay.shift = data.drifts[1];
    const auto lb = label::auto_label(data.rasters[1], segments, al);

    table.add_row({util::Table::fmt(window, 0),
                   util::Table::fmt(static_cast<double>(segments.size()) /
                                        (config.track_length_m / 1000.0),
                                    0),
                   util::Table::fmt(photons.mean(), 1),
                   util::Table::fmt(std::max(0.0, empty_pct), 1),
                   util::Table::fmt(lb.label_accuracy() * 100.0, 2),
                   util::Table::fmt(std::sqrt(h_err2.mean()), 4)});
  }
  table.print();
  std::printf("trade-off: smaller windows = denser product but fewer photons/segment "
              "(noisier heights); 2 m is the paper's operating point\n");
  return 0;
}
