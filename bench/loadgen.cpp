#include "loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/timer.hpp"

namespace is2::bench {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  const std::size_t ranks = std::max<std::size_t>(n, 1);
  cdf_.reserve(ranks);
  double acc = 0.0;
  for (std::size_t k = 0; k < ranks; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::operator()(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1 : static_cast<std::size_t>(it - cdf_.begin());
}

namespace {

struct Arrival {
  double at_s = 0.0;
  std::size_t rank = 0;
  serve::Priority cls = serve::Priority::interactive;
};

bool in_burst(const LoadgenConfig& cfg, double t) {
  if (cfg.burst_factor <= 1.0 || cfg.burst_every_s <= 0.0) return false;
  return std::fmod(t, cfg.burst_every_s) < cfg.burst_len_s;
}

/// The whole schedule — arrival instants, key ranks, classes — is drawn up
/// front from one Rng, so a seed fixes the offered traffic exactly and two
/// configurations see identical load (only the service's response differs).
std::vector<Arrival> make_schedule(const LoadgenConfig& cfg, std::size_t universe,
                                   util::Rng& rng) {
  std::vector<Arrival> out;
  const ZipfSampler zipf(universe, cfg.zipf_s);
  const std::vector<double> mix(cfg.class_mix.begin(), cfg.class_mix.end());
  double t = 0.0;
  for (;;) {
    // Piecewise-constant rate: the exponential gap uses the rate at the
    // previous arrival. Exact thinning is overkill for a bench — episodes
    // are long relative to 1/rate.
    const double rate = cfg.offered_qps * (in_burst(cfg, t) ? cfg.burst_factor : 1.0);
    if (rate <= 0.0) break;
    t += rng.exponential(rate);
    if (t >= cfg.duration_s) break;
    out.push_back({t, zipf(rng), static_cast<serve::Priority>(rng.categorical(mix))});
  }
  return out;
}

}  // namespace

std::uint64_t LoadgenResult::shed() const {
  std::uint64_t total = 0;
  for (const ClassOutcome& c : by_class) total += c.shed();
  return total;
}

LoadgenResult run_open_loop(const LoadgenConfig& config,
                            const std::vector<serve::ProductRequest>& universe_ranked,
                            const SubmitFn& submit) {
  LoadgenResult out;
  if (universe_ranked.empty()) return out;
  util::Rng rng(config.seed);
  const std::vector<Arrival> schedule = make_schedule(config, universe_ranked.size(), rng);
  out.offered = schedule.size();
  out.offered_qps =
      config.duration_s > 0 ? static_cast<double>(schedule.size()) / config.duration_s : 0.0;

  struct Fired {
    serve::ProductFuture future;
    serve::Priority cls = serve::Priority::interactive;
  };
  struct ClientTally {
    std::array<std::uint64_t, serve::kPriorityClasses> shed_arrival{};
    std::array<std::uint64_t, serve::kPriorityClasses> errors{};
    std::vector<Fired> fired;
  };
  const std::size_t clients = std::max<std::size_t>(config.clients, 1);
  std::vector<ClientTally> tally(clients);

  util::Timer wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& mine = tally[c];
      // Arrivals round-robin across clients, preserving the aggregate
      // process; each client fires its arrivals at their scheduled instants
      // and never waits for a response (open loop).
      for (std::size_t i = c; i < schedule.size(); i += clients) {
        const Arrival& a = schedule[i];
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(a.at_s)));
        serve::ProductRequest req = universe_ranked[a.rank];
        req.priority = a.cls;
        req.deadline_ms = config.deadline_ms;
        const auto k = static_cast<std::size_t>(a.cls);
        std::optional<serve::ProductFuture> f;
        try {
          f = submit(req, nullptr);
        } catch (...) {
          ++mine.errors[k];  // router refused (e.g. fleet shut down mid-run)
          continue;
        }
        if (f)
          mine.fired.push_back({std::move(*f), a.cls});
        else
          ++mine.shed_arrival[k];
      }
    });
  }
  for (auto& t : threads) t.join();

  // Harvest after the firing window: latencies come from the job-side
  // ProductResponse::service_ms, so slow harvesting cannot distort them.
  for (ClientTally& mine : tally) {
    for (std::size_t k = 0; k < serve::kPriorityClasses; ++k) {
      out.by_class[k].offered += mine.shed_arrival[k] + mine.errors[k];
      out.by_class[k].shed_arrival += mine.shed_arrival[k];
      out.by_class[k].errors += mine.errors[k];
    }
    for (Fired& fr : mine.fired) {
      ClassOutcome& cls = out.by_class[static_cast<std::size_t>(fr.cls)];
      ++cls.offered;
      try {
        const serve::ProductResponse response = fr.future.get();
        ++cls.served;
        out.latency_ms.push_back(response.service_ms);
      } catch (const serve::DeadlineError&) {
        ++cls.deadline_expired;
      } catch (const serve::ShedError&) {
        ++cls.shed_displaced;
      } catch (...) {
        ++cls.errors;
      }
    }
  }
  out.wall_s = wall.seconds();
  for (const ClassOutcome& cls : out.by_class) out.served += cls.served;
  out.achieved_qps = out.wall_s > 0 ? static_cast<double>(out.served) / out.wall_s : 0.0;
  return out;
}

TrafficResult drive_closed_loop(serve::GranuleService& service,
                                const std::vector<serve::ProductRequest>& requests,
                                std::size_t clients) {
  TrafficResult out;
  std::vector<std::vector<double>> per_client(clients);
  std::atomic<std::size_t> next{0};
  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests.size()) return;
        util::Timer t;
        const auto response = service.submit(requests[i]).get();
        if (!response.product) std::abort();
        per_client[c].push_back(t.millis());
      }
    });
  }
  for (auto& t : threads) t.join();
  out.wall_s = wall.seconds();
  for (auto& v : per_client) out.latency_ms.insert(out.latency_ms.end(), v.begin(), v.end());
  return out;
}

}  // namespace is2::bench
