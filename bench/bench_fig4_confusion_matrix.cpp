// Fig. 4: sea-ice classification confusion matrix of the LSTM model on the
// held-out 20% — row-normalized percentages with per-class recall (the
// paper reports thick 98.39 / thin 73.80 / open water 60.25).
#include <cstdio>

#include "common.hpp"
#include "nn/metrics.hpp"

int main() {
  using namespace is2;
  const auto data = bench::load_or_generate_campaign(core::PipelineConfig::standard());
  auto trained = bench::load_or_train_lstm(data);

  const auto td = bench::build_training_data(data, 8, 32'000);
  const nn::Metrics m = trained.model.evaluate(td.test);

  std::printf("Fig. 4: sea-ice classification confusion matrix (LSTM, %zu test windows)\n\n",
              td.test.size());
  std::printf("%s\n", m.confusion.render().c_str());

  const auto recall = m.confusion.per_class_recall();
  std::printf("per-class recall:  thick ice %.2f%%   thin ice %.2f%%   open water %.2f%%\n",
              recall[0] * 100.0, recall[1] * 100.0, recall[2] * 100.0);
  std::printf("overall accuracy:  %.2f%%\n", m.accuracy * 100.0);
  std::printf("\nexpected shape (paper): thick ice >> thin ice > open water recall\n");
  return 0;
}
