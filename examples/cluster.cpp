// Cluster serving demo: stand up a 3-node serve::Cluster over a sharded
// tiny campaign, warm the fleet, drive skewed traffic at the router —
// watching the hot granule spread over its replica set and products hop
// between nodes via peer fetch — then kill the hot key's owning node and
// show the consistent-hash ring re-routing its keys to the survivors, who
// recover from the shared disk tier without shard IO or inference. Ends
// with the merged fleet-wide Prometheus exposition (per-node `node` label).
//
//   ./examples/cluster
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "h5lite/granule_io.hpp"
#include "mapred/engine.hpp"
#include "obs/export.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"

int main() {
  using namespace is2;
  using atl03::BeamId;

  // 1. Data plane: one simulated granule, sharded and indexed for serving.
  const core::PipelineConfig config = core::PipelineConfig::tiny();
  const core::Campaign campaign(config);
  std::printf("== generating + sharding granule %s ==\n",
              campaign.pairs()[1].granule_id.c_str());
  const core::PairDataset pair = campaign.generate(1);

  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("is2_cluster_demo_" + std::to_string(::getpid())))
                              .string();
  std::filesystem::create_directories(dir);
  core::ShardSet shards;
  core::write_shards(pair.granule, 0, 2, dir, shards);
  const serve::ShardIndex index = serve::ShardIndex::build(shards.files);

  // 2. Model + scaler, identical on every node (what makes cache keys and
  //    products portable across the fleet).
  const auto merged =
      serve::ShardIndex::load_merged(*index.find(pair.granule.id, BeamId::Gt1r));
  const auto pre = atl03::preprocess_beam(merged, merged.beams[0], campaign.corrections(),
                                          config.preprocess);
  auto segs = resample::resample(pre, config.segmenter);
  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);
  fpb.apply(segs);
  const auto features = resample::to_features(segs, resample::rolling_baseline(segs));
  const resample::FeatureScaler scaler = resample::FeatureScaler::fit(features);
  const auto model_factory = [&config] {
    util::Rng rng(99);
    return nn::make_lstm_model(config.sequence_window, resample::FeatureRow::kDim, rng);
  };

  // 3. The fleet: 3 nodes behind the consistent-hash router, replica sets
  //    of 2 for hot keys and peer fetch, one shared disk tier.
  serve::ClusterConfig ccfg;
  ccfg.nodes = 3;
  ccfg.replication_factor = 2;
  ccfg.hot_key_threshold = 4;
  ccfg.shared_disk_dir = dir + "/fleet_cache";
  ccfg.node.workers = 1;
  ccfg.node.queue_capacity = 8;
  serve::Cluster cluster(ccfg, config, campaign.corrections(), index, model_factory, scaler);
  std::printf("fleet: %zu nodes x %zu workers, rf=%zu, hot threshold %llu, shared disk %s\n",
              cluster.num_nodes(), ccfg.node.workers, ccfg.replication_factor,
              static_cast<unsigned long long>(ccfg.hot_key_threshold),
              ccfg.shared_disk_dir.c_str());

  // 4. Warm the fleet: every (granule, beam) prefetches its classification
  //    prefix on its owning node; later deep requests resume from it.
  mapred::Engine engine({1, 2});
  std::vector<serve::ProductRequest> all;
  for (const auto& [granule, beam] : index.entries()) {
    serve::ProductRequest r;
    r.granule_id = granule;
    r.beam = beam;
    all.push_back(r);
  }
  std::printf("== warm(): %zu shallow products prefetched to their owners ==\n",
              cluster.warm(all, engine));

  // 5. Skewed traffic: most requests hammer one hot product (which crosses
  //    the threshold and spreads over its replica set — the first request
  //    each replica sees peer-fetches the resident product instead of
  //    rebuilding), the rest spread across beams/methods.
  serve::ProductRequest hot;
  hot.granule_id = pair.granule.id;
  hot.beam = BeamId::Gt1r;
  hot.priority = serve::Priority::interactive;
  const std::uint32_t hot_owner = cluster.owner_of(cluster.key_for(hot));

  const BeamId beams[] = {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r};
  const seasurface::Method methods[] = {seasurface::Method::NasaEquation,
                                        seasurface::Method::MinElevation};
  std::printf("== driving 60 requests (hot key owned by node%u) from 3 clients ==\n",
              hot_owner);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(500 + c);
      for (int i = 0; i < 20; ++i) {
        serve::ProductRequest r = hot;
        if (rng.uniform() > 0.7) {
          r.beam = beams[rng.next() % 3];
          r.method = methods[rng.next() % 2];
          r.priority = serve::Priority::background;
        }
        if (auto f = cluster.try_submit(r)) {
          try {
            f->get();
          } catch (const serve::ShedError&) {
            // displaced by a more important admission — retryable
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto m1 = cluster.metrics();
  std::printf("\n== ClusterMetrics after traffic ==\n");
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i)
    std::printf("node%zu  routed %-4llu  fast hits %-4llu  builds %-3llu  resumed %llu\n", i,
                static_cast<unsigned long long>(m1.routed[i]),
                static_cast<unsigned long long>(m1.nodes[i].fast_hits),
                static_cast<unsigned long long>(m1.nodes[i].scheduler.completed),
                static_cast<unsigned long long>(m1.nodes[i].resumed_builds));
  std::printf("imbalance %.2fx | hot keys %llu | replica routes %llu | "
              "peer probes %llu -> %llu fetches (each one skipped shard IO + inference)\n",
              m1.imbalance(), static_cast<unsigned long long>(m1.hot_keys),
              static_cast<unsigned long long>(m1.replica_routes),
              static_cast<unsigned long long>(m1.peer_probes),
              static_cast<unsigned long long>(m1.peer_fetches));
  std::printf("shared disk: %llu writes, %llu hits, %zu files\n",
              static_cast<unsigned long long>(m1.shared_disk.writes),
              static_cast<unsigned long long>(m1.shared_disk.hits), m1.shared_disk.entries);

  // 6. Kill the hot key's owner. The ring drops only that node's ranges
  //    (minimal churn), the key re-routes to a survivor, and the product
  //    comes back from peer RAM or the shared disk tier — no shard IO.
  cluster.wait_disk_writebacks();
  std::printf("\n== killing node%u (the hot key's owner) ==\n", hot_owner);
  cluster.kill_node(hot_owner);
  const std::uint32_t new_owner = cluster.owner_of(cluster.key_for(hot));
  const auto loads_before = h5::load_granule_call_count();
  const auto rerouted = cluster.submit(hot).get();
  const bool reread_shards = h5::load_granule_call_count() != loads_before;
  std::printf("%zu/%zu nodes live; hot key re-routed node%u -> node%u, served from %s "
              "(%s shard IO)\n",
              cluster.live_count(), cluster.num_nodes(), hot_owner, new_owner,
              rerouted.source == serve::ServedFrom::disk  ? "the shared disk tier"
              : rerouted.source == serve::ServedFrom::ram ? "replica RAM"
                                                          : "a rebuild",
              reread_shards ? "with" : "without any");
  // The fleet invariant this demo exists to show (and CI smoke-tests): a
  // survivor serves a dead owner's key from a warm tier, never by re-reading
  // shards or rebuilding from scratch.
  if (new_owner == hot_owner || rerouted.source == serve::ServedFrom::build || reread_shards) {
    std::fprintf(stderr, "cluster demo: node-kill recovery hit a cold path\n");
    return 1;
  }

  // 7. Fleet-wide observability: one merged snapshot, node-local points
  //    tagged with the bounded-cardinality `node` label.
  const std::string prom = obs::to_prometheus(cluster.obs_snapshot());
  std::printf("\n== merged Prometheus exposition: %zu bytes; excerpt ==\n", prom.size());
  std::size_t shown = 0, at = 0;
  while (at < prom.size() && shown < 8) {
    const std::size_t end = prom.find('\n', at);
    const std::string line = prom.substr(at, end - at);
    at = end + 1;
    if (line.rfind("is2_cluster_", 0) == 0 ||
        (line.rfind("is2_serve_requests_total", 0) == 0 && line.find("node=") != std::string::npos)) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }

  cluster.shutdown();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
