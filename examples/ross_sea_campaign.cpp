// Ross Sea November 2019 campaign: reproduces the paper's full workflow over
// all eight Table I coincident pairs — generation, drift-corrected
// auto-labeling, model training, per-track classification and freeboard —
// then prints a campaign summary comparing the 2m product against the
// ATL07/ATL10-style baselines on every track.
//
//   ./examples/ross_sea_campaign [track_km]   (default 12)
#include <cstdio>
#include <cstdlib>

#include "baseline/atl07.hpp"
#include "baseline/atl10.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "freeboard/freeboard.hpp"
#include "seasurface/detector.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace is2;

  core::PipelineConfig config = core::PipelineConfig::small();
  if (argc > 1) config.track_length_m = std::atof(argv[1]) * 1000.0;
  else config.track_length_m = 12'000.0;

  core::Campaign campaign(config);
  std::printf("Ross Sea campaign: 8 coincident pairs, %.0f km tracks\n\n",
              config.track_length_m / 1000.0);

  // Stage 1-2: generate and auto-label all pairs.
  std::vector<core::PairDataset> pairs;
  std::vector<core::LabeledPair> labeled;
  for (std::size_t k = 0; k < campaign.pairs().size(); ++k) {
    pairs.push_back(campaign.generate(k));
    labeled.push_back(core::label_pair(pairs.back(), campaign.corrections(), config));
    double acc = 0.0;
    for (const auto& lb : labeled.back().labeled) acc += lb.label_accuracy() / 3.0;
    std::printf("pair %zu (%s): S2 seg acc %.3f, auto-label acc %.3f\n", k + 1,
                pairs.back().pair.granule_id.c_str(), pairs.back().segmentation_accuracy, acc);
  }

  // Stage 3: train the LSTM on the pooled labeled data.
  const core::TrainingData data = core::assemble_training_data(labeled, config);
  std::printf("\ntraining LSTM on %zu windows (test %zu)...\n", data.train.size(),
              data.test.size());
  util::Rng rng(7);
  nn::Sequential model = nn::make_lstm_model(config.sequence_window, 6, rng);
  nn::Adam adam(0.003);
  nn::FocalLoss loss(2.0, nn::FocalLoss::balanced_alpha(data.train.y));
  nn::FitConfig fit;
  fit.epochs = 12;
  model.fit(data.train, loss, adam, fit);
  const nn::Metrics metrics = model.evaluate(data.test);
  std::printf("held-out accuracy %.2f%%, macro F1 %.2f%%\n\n", metrics.accuracy * 100.0,
              metrics.f1 * 100.0);

  // Stage 4: per-track classification + freeboard, vs baselines.
  util::Table table("campaign products (beam gt2r per track)");
  table.set_header({"Pair", "2m segs/km", "ATL07 segs/km", "cls acc %", "ATL07 acc %",
                    "mean fb (m)", "ATL10 fb (m)"});
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    // Our product.
    std::size_t beam_idx = 0;
    for (std::size_t b = 0; b < labeled[k].beams.size(); ++b)
      if (labeled[k].beams[b].beam == atl03::BeamId::Gt2r) beam_idx = b;
    const auto& lb = labeled[k].labeled[beam_idx];
    const auto classes =
        core::classify_segments(model, data.scaler, lb.features, config.sequence_window);
    const auto profile = seasurface::detect_sea_surface(
        lb.segments, classes, seasurface::Method::NasaEquation, config.seasurface);
    const auto product =
        freeboard::compute_freeboard(lb.segments, classes, profile, config.freeboard);

    std::size_t ok = 0, known = 0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (lb.segments[i].truth == atl03::SurfaceClass::Unknown) continue;
      ++known;
      if (classes[i] == lb.segments[i].truth) ++ok;
    }

    // Baselines from the same photons.
    const auto atl07 = baseline::build_atl07(labeled[k].beams[beam_idx]);
    const auto atl10 = baseline::build_atl10(atl07);
    util::RunningStats fb10;
    for (const auto& f : atl10.freeboards) fb10.add(f.freeboard);

    const double km = config.track_length_m / 1000.0;
    table.add_row({std::to_string(k + 1),
                   util::Table::fmt(static_cast<double>(lb.segments.size()) / km, 0),
                   util::Table::fmt(static_cast<double>(atl07.segments.size()) / km, 0),
                   util::Table::fmt(100.0 * static_cast<double>(ok) /
                                        static_cast<double>(std::max<std::size_t>(known, 1)),
                                    1),
                   util::Table::fmt(atl07.classification_accuracy() * 100.0, 1),
                   util::Table::fmt(product.stats().mean(), 3),
                   util::Table::fmt(fb10.mean(), 3)});
  }
  table.print();
  return 0;
}
