// Quickstart: the whole pipeline on one simulated coincident pair, small
// scale — simulate ATL03 photons + a Sentinel-2 scene, segment the imagery,
// auto-label the 2m segments, train the LSTM classifier, detect the local
// sea surface and compute freeboard.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "freeboard/freeboard.hpp"
#include "pipeline/classifier.hpp"
#include "pipeline/product_builder.hpp"
#include "seasurface/detector.hpp"

int main() {
  using namespace is2;

  // 1. Configure a small Ross Sea scene and generate pair #2 of Table I
  //    (zero drift, the track the paper plots in Figs 6/8/10).
  core::PipelineConfig config = core::PipelineConfig::small();
  core::Campaign campaign(config);
  std::printf("== generating pair 2: granule %s ==\n",
              campaign.pairs()[1].granule_id.c_str());
  const core::PairDataset pair = campaign.generate(1);
  std::printf("photons: %zu   S2 segmentation accuracy: %.3f\n",
              pair.granule.total_photons(), pair.segmentation_accuracy);

  // 2. Preprocess, resample to 2m segments and auto-label from the S2 scene.
  const core::LabeledPair labeled = core::label_pair(pair, campaign.corrections(), config);
  std::printf("== auto-labeling ==\n");
  for (std::size_t b = 0; b < labeled.labeled.size(); ++b)
    std::printf("beam %s: %zu segments, label accuracy %.3f\n",
                atl03::beam_name(labeled.beams[b].beam), labeled.labeled[b].segments.size(),
                labeled.labeled[b].label_accuracy());

  // 3. Train the paper's LSTM on the labeled windows (80/20 split).
  const core::TrainingData data = core::assemble_training_data({labeled}, config);
  std::printf("== training LSTM on %zu windows ==\n", data.train.size());
  util::Rng rng(1);
  nn::Sequential model = nn::make_lstm_model(config.sequence_window, 6, rng);
  nn::Adam adam(0.003);
  nn::FocalLoss loss(2.0, nn::FocalLoss::balanced_alpha(data.train.y));
  nn::FitConfig fit;
  fit.epochs = 10;
  fit.batch_size = 32;
  fit.verbose = true;
  model.fit(data.train, loss, adam, fit);
  const nn::Metrics metrics = model.evaluate(data.test);
  std::printf("test accuracy %.2f%%  F1 %.2f%%\n", metrics.accuracy * 100.0,
              metrics.f1 * 100.0);

  // 4. Classify a full beam, then run the rest of the stage graph
  //    (sea surface + freeboard) through is2::pipeline::ProductBuilder —
  //    the same typed builder serve and the batch jobs use. The Artifacts
  //    bundle resumes from the already-classified segments, so only the
  //    missing stages run, and each stage is latency-instrumented.
  const auto& beam = labeled.labeled[0];
  const auto classes = pipeline::classify_windows(model, data.scaler, beam.features,
                                                  config.sequence_window);
  pipeline::ProductBuilder builder(config, campaign.corrections());
  pipeline::Artifacts art = pipeline::Artifacts::resume(beam.segments, classes);
  pipeline::StageTrace trace;
  builder.build(art, pipeline::ProductKind::freeboard, /*backend=*/nullptr,
                seasurface::Method::NasaEquation, &trace);
  const freeboard::FreeboardProduct& product = art.freeboard_out();

  std::printf("== freeboard product (beam gt1r) ==\n");
  std::printf("%zu points (%.0f per km), mean freeboard %.3f m\n", product.points.size(),
              product.points_per_km(), product.stats().mean());
  std::printf("stage latencies: seasurface %.2f ms, freeboard %.2f ms\n",
              trace.at(pipeline::StageId::seasurface), trace.at(pipeline::StageId::freeboard));
  std::printf("distribution:\n%s", product.distribution(-0.2, 1.0, 24).render(40).c_str());
  return 0;
}
