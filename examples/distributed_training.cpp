// Distributed training demo: the paper's four Horovod integration steps on
// the in-process substrate, with a rank sweep showing synchronous
// data-parallel scaling and the accuracy staying put.
//
//   ./examples/distributed_training [max_ranks]   (default 8)
//
// Doubles as the CI smoke: exits 1 if any rank count trains below 90%
// accuracy or if the speedup column is not monotonically increasing (small
// tolerance for comm-overhead jitter).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "dist/trainer.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace is2;
  const int max_ranks = argc > 1 ? std::atoi(argv[1]) : 8;

  // Build a labeled dataset from one simulated pair (small scale).
  core::PipelineConfig config = core::PipelineConfig::small();
  core::Campaign campaign(config);
  std::printf("generating + labeling one pair for training data...\n");
  const auto pair = campaign.generate(1);
  const auto labeled = core::label_pair(pair, campaign.corrections(), config);
  const auto data = core::assemble_training_data({labeled}, config);
  std::printf("train %zu windows / test %zu windows\n\n", data.train.size(), data.test.size());

  // The paper's integration steps, mapped onto this library:
  //   1. hvd.init()                    -> dist::init(ranks) inside the trainer
  //   2. pin one GPU per process       -> one worker thread per rank
  //   3. hvd.DistributedOptimizer(opt) -> dist::DistributedOptimizer(Adam)
  //   4. BroadcastGlobalVariables(0)   -> dist::broadcast_parameters(rank 0)
  util::Table table("synchronous data-parallel LSTM training");
  table.set_header({"Ranks", "Time (s)", "Time/epoch (s)", "Data/s", "Speedup", "Accuracy %"});
  double t1 = 0.0;
  std::vector<double> speedups;
  std::vector<double> accuracies;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 6;
    cfg.batch_per_rank = 32;
    const std::uint64_t seed = config.seed;
    const auto result = dist::train_distributed(
        [seed] {
          util::Rng rng(seed ^ 0xD157ull);
          return nn::make_lstm_model(5, 6, rng);
        },
        data.train, data.test, cfg);
    if (ranks == 1) t1 = result.total_time_s;
    speedups.push_back(t1 / result.total_time_s);
    accuracies.push_back(result.test_metrics.accuracy);
    table.add_row({std::to_string(ranks), util::Table::fmt(result.total_time_s, 2),
                   util::Table::fmt(result.time_per_epoch_s, 3),
                   util::Table::fmt(result.samples_per_s, 0),
                   util::Table::fmt(speedups.back(), 2),
                   util::Table::fmt(result.test_metrics.accuracy * 100.0, 2)});
  }
  table.print();
  util::Rng rng(1);
  nn::Sequential probe = nn::make_lstm_model(5, 6, rng);
  std::printf("\ngradient traffic per step: %zu floats all-reduced (ring, 2(N-1)/N per rank)\n",
              probe.param_count());

  // Smoke invariants (CI runs this binary and trusts the exit code).
  bool ok = true;
  for (std::size_t i = 0; i < accuracies.size(); ++i) {
    if (accuracies[i] < 0.90) {
      std::fprintf(stderr, "FAIL: accuracy %.3f at row %zu below the 0.90 floor\n", accuracies[i],
                   i);
      ok = false;
    }
    // Each doubling must still buy real speedup; 0.92 tolerance absorbs
    // comm-overhead jitter without letting a scaling regression through.
    if (i > 0 && speedups[i] < speedups[i - 1] * 0.92) {
      std::fprintf(stderr, "FAIL: speedup column not monotone (%.2f after %.2f at row %zu)\n",
                   speedups[i], speedups[i - 1], i);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("smoke invariants hold: accuracy >= 90%%, speedup monotone\n");
  return 0;
}
