// Serving demo: stand up a GranuleService over a sharded tiny campaign and
// drive mixed hot/cold traffic at it — a skewed workload where one popular
// product takes most of the requests (the "dashboard granule", submitted as
// `interactive`) while a long tail of cold (beam, method) combinations
// trickles in as `background`. Prints the ServiceMetrics snapshot: cache
// hit rates on both tiers, coalescing, class-aware sheds and per-stage /
// per-class latency distributions — plus the obs view of the same traffic:
// a Prometheus exposition excerpt and a Perfetto-loadable trace of the span
// ring — then "restarts" the service over the same disk cache directory to
// show the warm-disk cold start (products come back from the disk tier
// without any shard IO or inference).
//
//   ./examples/granule_service
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "baseline/decision_tree.hpp"
#include "core/campaign.hpp"
#include "core/config.hpp"
#include "obs/export.hpp"
#include "pipeline/kinds.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

int main() {
  using namespace is2;
  using atl03::BeamId;

  // 1. Build the data plane: one simulated granule, sharded to disk the way
  //    the map-reduce jobs shard it, then indexed for serving.
  const core::PipelineConfig config = core::PipelineConfig::tiny();
  const core::Campaign campaign(config);
  std::printf("== generating + sharding granule %s ==\n",
              campaign.pairs()[1].granule_id.c_str());
  const core::PairDataset pair = campaign.generate(1);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("is2_serve_demo_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  core::ShardSet shards;
  core::write_shards(pair.granule, 0, 2, dir, shards);
  const serve::ShardIndex index = serve::ShardIndex::build(shards.files);
  std::printf("%zu shard files -> %zu servable (granule, beam) products\n",
              shards.files.size(), index.size());

  // 2. Model + scaler (untrained weights: the demo is about serving, and an
  //    untrained LSTM costs exactly as much to serve as a trained one).
  const auto merged =
      serve::ShardIndex::load_merged(*index.find(pair.granule.id, BeamId::Gt1r));
  const auto pre = atl03::preprocess_beam(merged, merged.beams[0], campaign.corrections(),
                                          config.preprocess);
  auto segs = resample::resample(pre, config.segmenter);
  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);
  fpb.apply(segs);
  const auto features = resample::to_features(segs, resample::rolling_baseline(segs));
  const resample::FeatureScaler scaler = resample::FeatureScaler::fit(features);
  const auto model_factory = [&config] {
    util::Rng rng(99);
    return nn::make_lstm_model(config.sequence_window, resample::FeatureRow::kDim, rng);
  };
  // Second classifier backend: an ATL07-style decision tree (fit here on
  // photon truth for brevity) served behind the same submit API.
  std::vector<float> tx;
  std::vector<std::uint8_t> ty;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].truth == atl03::SurfaceClass::Unknown) continue;
    for (int d = 0; d < resample::FeatureRow::kDim; ++d) tx.push_back(features[i].v[d]);
    ty.push_back(static_cast<std::uint8_t>(segs[i].truth));
  }
  baseline::DecisionTree tree;
  tree.fit(tx, resample::FeatureRow::kDim, ty, atl03::kNumClasses);
  const auto tree_factory = [tree] { return tree; };

  // 3. The service: 2 workers, a bounded queue, a 64 MiB RAM product cache
  //    and a persistent disk tier under the demo directory.
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.cache_bytes = 64u << 20;
  cfg.disk_cache_dir = dir + "/product_cache";
  serve::GranuleService service(cfg, config, campaign.corrections(), index, model_factory,
                                scaler, tree_factory);

  // 3b. Kind-aware serving: build the classification prefix first, then ask
  //     for the full freeboard product — the second build *resumes* from the
  //     cached prefix (only sea surface + freeboard run, no shard IO, no
  //     inference). The decision-tree backend serves through the same API
  //     under its own cache identity.
  serve::ProductRequest hot0;
  hot0.granule_id = pair.granule.id;
  hot0.beam = BeamId::Gt1r;
  serve::ProductRequest prefix = hot0;
  prefix.kind = pipeline::ProductKind::classification;
  service.submit(prefix).get();
  service.submit(hot0).get();  // resumed build
  serve::ProductRequest tree_req = hot0;
  tree_req.backend = pipeline::Backend::decision_tree;
  const auto tree_response = service.submit(tree_req).get();
  std::printf("kinds/backends: classification prefix built, freeboard resumed from it "
              "(%llu resumed build(s)); tree-backend product: %zu freeboard points\n",
              static_cast<unsigned long long>(service.metrics().resumed_builds),
              tree_response.product->freeboard.points.size());

  // 4. Mixed hot/cold traffic: 70% of requests hit the hot product at
  //    interactive priority, the rest spread over every (beam, method)
  //    combination as background backfill.
  const BeamId beams[] = {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r};
  const seasurface::Method methods[] = {
      seasurface::Method::NasaEquation, seasurface::Method::MinElevation,
      seasurface::Method::AverageElevation, seasurface::Method::NearestMinElevation};
  serve::ProductRequest hot;
  hot.granule_id = pair.granule.id;
  hot.beam = BeamId::Gt1r;
  hot.priority = serve::Priority::interactive;

  std::printf("== driving 80 requests (70%% hot/interactive) from 4 clients ==\n");
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(500 + c);
      for (int i = 0; i < 20; ++i) {
        serve::ProductRequest r = hot;
        if (rng.uniform() > 0.7) {
          r.beam = beams[rng.next() % 3];
          r.method = methods[rng.next() % 4];
          r.priority = serve::Priority::background;
        }
        // Load-shedding submit: under saturation a queued background job is
        // displaced before an interactive request is refused (a real
        // frontend would answer 429 / retry-later for the shed class).
        if (auto f = service.try_submit(r)) {
          try {
            const auto response = f->get();
            (void)response;
          } catch (const serve::ShedError&) {
            // our queued job was displaced by a more important one
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // 5. What the service saw.
  const auto m = service.metrics();
  std::printf("\n== ServiceMetrics ==\n");
  std::printf("requests          %llu (fast cache hits %llu)\n",
              static_cast<unsigned long long>(m.requests),
              static_cast<unsigned long long>(m.fast_hits));
  std::printf("scheduler         dispatched %llu, coalesced %llu, shed %llu\n",
              static_cast<unsigned long long>(m.scheduler.dispatched),
              static_cast<unsigned long long>(m.scheduler.coalesced),
              static_cast<unsigned long long>(m.scheduler.rejected));
  std::printf("RAM cache         %llu hits / %llu misses (%.0f%% hit rate), %zu products, "
              "%.1f MiB resident, %llu evictions\n",
              static_cast<unsigned long long>(m.cache.hits),
              static_cast<unsigned long long>(m.cache.misses), m.cache.hit_rate() * 100.0,
              m.cache.entries, static_cast<double>(m.cache.bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(m.cache.evictions));
  std::printf("disk cache        %llu hits / %llu misses, %zu files, %.1f MiB, "
              "%llu writes\n",
              static_cast<unsigned long long>(m.disk.hits),
              static_cast<unsigned long long>(m.disk.misses), m.disk.entries,
              static_cast<double>(m.disk.bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(m.disk.writes));
  for (std::size_t c = 0; c < serve::kPriorityClasses; ++c)
    std::printf("class %-11s %llu requests, %llu shed, mean %.2f ms\n",
                serve::priority_name(static_cast<serve::Priority>(c)),
                static_cast<unsigned long long>(m.by_class[c].requests),
                static_cast<unsigned long long>(m.scheduler.shed_by_class[c]),
                m.by_class[c].latency.stats.mean());
  std::printf("inference         %llu windows in %llu batches\n",
              static_cast<unsigned long long>(m.inference_windows),
              static_cast<unsigned long long>(m.inference_batches));
  std::printf("stage means [ms]  load %.1f | features %.1f | inference %.1f | "
              "seasurface %.1f | freeboard %.1f | total %.1f\n",
              m.load.stats.mean(), m.features.stats.mean(), m.inference.stats.mean(),
              m.seasurface.stats.mean(), m.freeboard.stats.mean(), m.total.stats.mean());
  std::printf("builder stages    ");
  for (std::size_t s = 0; s < pipeline::kNumStages; ++s)
    std::printf("%s %.2f ms%s", pipeline::stage_name(static_cast<pipeline::StageId>(s)),
                m.builder[s].stats.mean(), s + 1 < pipeline::kNumStages ? " | " : "\n");
  std::printf("\nbuild latency distribution (log-scale bins):\n%s", m.total.render(40).c_str());
  std::printf("scheduled jobs     queue_wait p50 %.2f / p99 %.2f ms, "
              "service_time p50 %.2f / p99 %.2f ms\n",
              m.queue_wait.p50_ms(), m.queue_wait.p99_ms(), m.service_time.p50_ms(),
              m.service_time.p99_ms());

  // 5b. The same numbers through the obs exporters: every counter and
  //     latency above is registry-backed, so one snapshot serves Prometheus
  //     scrapes, JSON dashboards and this excerpt alike — and the span ring
  //     renders the traffic as a Perfetto timeline.
  std::printf("\n== obs exports ==\n");
  const std::string prom = obs::to_prometheus(service.obs_snapshot());
  std::printf("Prometheus exposition: %zu bytes; excerpt:\n", prom.size());
  std::size_t shown = 0, at = 0;
  while (at < prom.size() && shown < 8) {
    const std::size_t end = prom.find('\n', at);
    const std::string line = prom.substr(at, end - at);
    at = end + 1;
    if (line.rfind("is2_serve_", 0) == 0 || line.rfind("is2_sched_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "is2_serve_demo_trace.json").string();
  {
    std::ofstream out(trace_path, std::ios::trunc);
    out << obs::to_perfetto(service.trace_spans(), obs::thread_labels());
  }
  std::printf("Perfetto trace: %zu spans -> %s (load it at https://ui.perfetto.dev)\n",
              service.trace_spans().size(), trace_path.c_str());

  // 6. Restart onto the same disk tier: the RAM cache is empty but every
  //    product persisted, so the cold start deserializes files instead of
  //    re-running the pipeline (no shard IO, no inference).
  service.shutdown();  // drains pending disk write-backs
  std::printf("\n== restarting over the same disk cache dir ==\n");
  serve::GranuleService restarted(cfg, config, campaign.corrections(), index, model_factory,
                                  scaler);
  util::Timer cold_start;
  std::size_t from_disk = 0;
  for (const BeamId beam : beams) {
    serve::ProductRequest r = hot;
    r.beam = beam;
    const auto response = restarted.submit(r).get();
    if (response.source == serve::ServedFrom::disk) ++from_disk;
  }
  std::printf("3 products in %.1f ms, %zu from the disk tier (build would be ~%.0f ms each)\n",
              cold_start.millis(), from_disk, m.total.stats.mean());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
