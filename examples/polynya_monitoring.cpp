// Polynya monitoring: a domain scenario from the paper's motivation — the
// Ross Sea's katabatic-wind polynyas (Ross Ice Shelf, Terra Nova Bay,
// McMurdo Sound) open and close on daily/weekly scales. This example raises
// the surface model's polynya activity, classifies repeat passes over the
// same scene across a simulated week, and reports open-water/thin-ice
// fraction and lead statistics per pass — the weekly-mapping use case of
// Koo et al. (paper ref [14]) built on the 2m product.
//
//   ./examples/polynya_monitoring
#include <cstdio>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "core/config.hpp"
#include "geo/polar_stereo.hpp"
#include "resample/fpb.hpp"
#include "resample/segmenter.hpp"
#include "seasurface/detector.hpp"
#include "util/table.hpp"

int main() {
  using namespace is2;
  using atl03::SurfaceClass;

  core::PipelineConfig config = core::PipelineConfig::small();
  config.surface.polynya_prob = 0.25;  // active polynya regime
  config.surface.polynya_scale = 20.0;
  config.surface.mean_lead_m = 160.0;

  const geo::GeoCorrections corrections(config.seed ^ 0xC044ull);
  const geo::PolarStereo proj = geo::PolarStereo::epsg3976();
  // Terra Nova Bay-ish corner of the Ross Sea box.
  const geo::GroundTrack track(proj.forward({-163.0, -75.0}), 1.35);

  std::printf("polynya monitoring: 7 daily passes over an active polynya region\n");
  util::Table table;
  table.set_header({"Day", "Open water %", "Thin ice %", "Leads / 10km", "Widest lead (m)",
                    "Interpolated SSH windows %"});

  const resample::FirstPhotonBiasCorrector fpb(config.instrument.dead_time_m,
                                               config.instrument.strong_channels);
  for (int day = 0; day < 7; ++day) {
    // Each day the pack has rearranged: new surface realization, same regime.
    atl03::SurfaceConfig scfg = config.surface;
    scfg.length_m = config.track_length_m;
    const atl03::SurfaceModel surface(scfg, track, corrections,
                                      config.seed + static_cast<std::uint64_t>(day) * 131);
    atl03::PhotonSimulator sim(config.instrument, config.seed + day);
    const auto granule =
        sim.simulate_granule(surface, "POLYNYA", day * 86'400.0, {atl03::BeamId::Gt2r});
    const auto pre =
        atl03::preprocess_beam(granule, granule.beams[0], corrections, config.preprocess);
    auto segments = resample::resample(pre, config.segmenter);
    fpb.apply(segments);

    // Ground-truth classes stand in for the classifier here: the example is
    // about the product, not the model (see quickstart for training).
    std::vector<SurfaceClass> classes(segments.size());
    std::size_t water = 0, thin = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      classes[i] = segments[i].truth;
      if (classes[i] == SurfaceClass::OpenWater) ++water;
      if (classes[i] == SurfaceClass::ThinIce) ++thin;
    }

    // Lead census: contiguous open-water runs.
    std::size_t leads = 0;
    double widest = 0.0;
    double run_start = -1.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const bool w = classes[i] == SurfaceClass::OpenWater;
      if (w && run_start < 0.0) run_start = segments[i].s;
      if (!w && run_start >= 0.0) {
        ++leads;
        widest = std::max(widest, segments[i].s - run_start);
        run_start = -1.0;
      }
    }

    const auto profile = seasurface::detect_sea_surface(
        segments, classes, seasurface::Method::NasaEquation, config.seasurface);

    const double n = static_cast<double>(segments.size());
    table.add_row({std::to_string(day + 1),
                   util::Table::fmt(100.0 * static_cast<double>(water) / n, 1),
                   util::Table::fmt(100.0 * static_cast<double>(thin) / n, 1),
                   util::Table::fmt(static_cast<double>(leads) /
                                        (config.track_length_m / 10'000.0),
                                    1),
                   util::Table::fmt(widest, 0),
                   util::Table::fmt(profile.interpolated_fraction() * 100.0, 1)});
  }
  table.print();
  std::printf("active polynyas keep open-water fractions high and the sea-surface "
              "windows well-constrained (few interpolated windows)\n");
  return 0;
}
